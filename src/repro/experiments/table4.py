"""Table 4 — ΔRTT performance × catchment-site relation cross-tab.

For each area, probe groups are split into better / similar / worse
(ΔRTT beyond ±5 ms) under regional anycast, and each bucket into the
fraction reaching a closer / same / further site.  The paper finds that
improved groups overwhelmingly reach closer sites, similar groups reach
the same sites (97.9–100%), and degraded groups mostly reach further
sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.experiments.compare53 import build_comparison
from repro.experiments.world import World
from repro.geo.areas import AREAS, Area


@dataclass
class Table4Result:
    experiment_id: str
    #: area → performance → {closer/same/further fractions + count}.
    crosstabs: dict[Area, dict[str, dict[str, float]]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Area", "Performance", "n", "Closer", "Same", "Further"]
        rows = []
        for area in AREAS:
            crosstab = self.crosstabs.get(area)
            if crosstab is None:
                continue
            for perf in ("better", "similar", "worse"):
                cells = crosstab[perf]
                rows.append(
                    [
                        area.value,
                        perf,
                        int(cells["count"]),
                        f"{100.0 * cells['closer']:.1f}%",
                        f"{100.0 * cells['same']:.1f}%",
                        f"{100.0 * cells['further']:.1f}%",
                    ]
                )
        return render_table(
            headers, rows,
            title="== table4: dRTT class vs catchment-site relation ==",
        )


def run(world: World) -> Table4Result:
    comparison = build_comparison(world)
    result = Table4Result(experiment_id="table4")
    for area in AREAS:
        if comparison.in_area(area):
            result.crosstabs[area] = comparison.crosstab(area)
    return result
