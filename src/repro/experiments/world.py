"""The shared experiment world: everything built once, measured lazily.

A :class:`World` assembles the full reproduction stack on one simulated
Internet:

- the base topology (tier-1s, transits, stubs, IXPs);
- the Edgio and Imperva deployments and the Tangled testbed;
- the probe population, measurement engine, and probe groups;
- the geolocation oracle, the three public geolocation databases, the
  CDNs' internal mapping databases, rDNS, and the resolver pool;
- representative customer hostnames for the Edgio-3 / Edgio-4 /
  Imperva-6 sets.

Measurements (pings, traceroutes, DNS resolutions, site mappings) are
cached per target address so the fifteen experiments share work instead
of re-measuring.
"""

from __future__ import annotations

from repro import obs
from repro.analysis.compare import ProbeObservation
from repro.analysis.cases import phop_owner
from repro.cdn.deployment import GlobalDeployment, RegionalDeployment
from repro.cdn.edgio import EdgioModel, build_edgio
from repro.cdn.imperva import ImpervaModel, build_imperva
from repro.dnssim.resolver import DnsMode, ResolverPool
from repro.dnssim.service import GeoMappingService
from repro.experiments.config import DEFAULT, ExperimentConfig
from repro.geo.atlas import City
from repro.geoloc.database import GeoDatabase, GeoDbParams, default_databases
from repro.geoloc.oracle import GeoOracle
from repro.geoloc.rdns import ReverseDNS
from repro.measurement.engine import (
    MeasurementEngine,
    PingResult,
    ServiceRegistry,
    TracerouteResult,
)
from repro.measurement.grouping import ProbeGroup, group_probes
from repro.measurement.probes import Probe, ProbePopulation
from repro.netaddr.ipv4 import IPv4Address
from repro.par.cache import resolve_cache
from repro.par.fleet import FleetPool
from repro.par.pool import capture_blocks_parallel, worker_count
from repro.sitemap.pipeline import SiteMapper, SiteMappingResult
from repro.tangled.testbed import TangledTestbed, build_tangled
from repro.topology.builder import InternetBuilder
from repro.topology.graph import Topology

#: Representative hostnames, as in §4.3.
EG3_HOSTNAME = "www.straitstimes.com"
EG4_HOSTNAME = "www.asus.com"
IM6_HOSTNAME = "www.stamps.com"


class World:
    """One fully built experiment world."""

    def __init__(self, config: ExperimentConfig | None = None):
        self.config = config or DEFAULT
        cfg = self.config
        with obs.span("world.build", config=cfg.name):
            with obs.span("world.topology"):
                self.topology: Topology = InternetBuilder(cfg.topology).build()
            with obs.span("world.deployments"):
                self.edgio: EdgioModel = build_edgio(
                    self.topology, seed=cfg.deployment_seed
                )
                self.imperva: ImpervaModel = build_imperva(
                    self.topology, seed=cfg.deployment_seed + 1
                )
                self.tangled: TangledTestbed = build_tangled(
                    self.topology, seed=cfg.deployment_seed + 2
                )
            with obs.span("world.probes"):
                self.probes = ProbePopulation(self.topology, cfg.probes)
            with obs.span("world.measurement"):
                self.registry = ServiceRegistry()
                self.edgio.eg3.register(self.registry)
                self.edgio.eg4.register(self.registry)
                self.imperva.im6.register(self.registry)
                self.imperva.ns.register(self.registry)
                self.tangled.register(self.registry)
                self.engine = MeasurementEngine(
                    self.topology, self.registry, seed=cfg.measurement_seed
                )
                # On-disk routing-table store when configured
                # (REPRO_CACHE_DIR / --cache-dir); None by default.
                self.engine.routing.persistent_cache = resolve_cache()
            with obs.span("world.geoloc"):
                self.oracle = GeoOracle(self.topology, self.probes)
                self.databases = default_databases(self.oracle, seed=cfg.geodb_seed)
                #: CDNs' internal client-mapping databases (distinct error draws).
                self.edgio_db = GeoDatabase(
                    "edgio-mapping", self.oracle, GeoDbParams(),
                    seed=cfg.geodb_seed + 10
                )
                self.imperva_db = GeoDatabase(
                    "imperva-mapping", self.oracle, GeoDbParams(),
                    seed=cfg.geodb_seed + 11
                )
                self.route53_db = GeoDatabase(
                    "route53-mapping", self.oracle, GeoDbParams(),
                    seed=cfg.geodb_seed + 12
                )
                self.rdns = ReverseDNS(self.oracle, seed=cfg.rdns_seed)
            with obs.span("world.dns"):
                self.resolvers = ResolverPool(self.probes, seed=cfg.resolver_seed)
            with obs.span("world.grouping"):
                self.usable_probes: list[Probe] = self.probes.usable_probes()
                self.probe_by_id: dict[int, Probe] = {
                    p.probe_id: p for p in self.usable_probes
                }
                self.groups: list[ProbeGroup] = group_probes(
                    self.probes.all_probes()
                )
            with obs.span("world.services"):
                self.eg3_service = self.edgio.eg3.service_for(
                    EG3_HOSTNAME, self.edgio_db
                )
                self.eg4_service = self.edgio.eg4.service_for(
                    EG4_HOSTNAME, self.edgio_db
                )
                self.im6_service = self.imperva.im6.service_for(
                    IM6_HOSTNAME, self.imperva_db
                )
            with obs.span("world.routing"):
                # Precompute every announced prefix in one batch: with
                # REPRO_WORKERS set this fans out across processes, and
                # every later compute() in the experiments is a cache
                # hit either way.
                self.engine.routing.compute_many(self.registry.announcements())
            obs.gauge.set("world.usable_probes", len(self.usable_probes))
            obs.gauge.set("world.probe_groups", len(self.groups))
        self._ping_cache: dict[tuple[IPv4Address, object], dict[int, PingResult]] = {}
        self._trace_cache: dict[IPv4Address, dict[int, TracerouteResult]] = {}
        self._resolve_cache: dict[tuple[str, DnsMode], dict[int, IPv4Address]] = {}
        self._sitemap_cache: dict[tuple[IPv4Address, tuple[str, ...]], SiteMappingResult] = {}
        self._fleet_pool: FleetPool | None = None
        self._fleet_checked = False
        self._fleet_snapshot: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    # Probe-fleet fan-out (repro.par)
    # ------------------------------------------------------------------
    def _fleet(self) -> FleetPool | None:
        """The persistent worker pool, or None when running serially.

        Created lazily at the first fleet measurement so the workers
        inherit the fully built world — warm routing cache included.

        Workers hold a snapshot of the world from pool-creation time, so
        the pool is rebuilt whenever the world has visibly changed since
        (an experiment registering a new announcement — e.g. the ReOpt
        deployments of the baselines experiment — or a topology
        mutation); measuring against a stale snapshot would silently
        report the new prefixes unreachable.
        """
        if capture_blocks_parallel():
            # Provenance / profiler capture is process-local; measure
            # serially while one is attached.
            return None
        current = (len(self.registry), self.topology.version)
        if self._fleet_pool is not None and self._fleet_snapshot != current:
            self._fleet_pool.close()
            self._fleet_pool = None
            self._fleet_checked = False
        if not self._fleet_checked:
            self._fleet_checked = True
            workers = worker_count()
            if workers > 1:
                self._fleet_pool = FleetPool(
                    self.engine,
                    self.usable_probes,
                    self.resolvers,
                    {
                        EG3_HOSTNAME: self.eg3_service,
                        EG4_HOSTNAME: self.eg4_service,
                        IM6_HOSTNAME: self.im6_service,
                    },
                    workers,
                )
                self._fleet_snapshot = current
        return self._fleet_pool

    def close(self) -> None:
        """Shut down the fleet pool (a no-op for serial worlds)."""
        if self._fleet_pool is not None:
            self._fleet_pool.close()
            self._fleet_pool = None
            self._fleet_checked = False

    def __getstate__(self) -> dict[str, object]:
        # Worlds are shipped to experiment workers; executors cannot
        # cross that boundary, and a child world must never fork its own
        # nested pool.
        state = dict(self.__dict__)
        state["_fleet_pool"] = None
        state["_fleet_checked"] = True
        return state

    # ------------------------------------------------------------------
    # Cached measurement primitives
    # ------------------------------------------------------------------
    def ping_all(
        self, addr: IPv4Address, salt: object = None
    ) -> dict[int, PingResult]:
        """Ping ``addr`` from every usable probe (cached)."""
        key = (addr, salt)
        cached = self._ping_cache.get(key)
        if cached is None:
            fleet = self._fleet()
            with obs.span("world.ping_all", addr=str(addr)):
                if fleet is not None:
                    cached = fleet.ping_all(addr, salt=salt)
                else:
                    cached = {
                        p.probe_id: self.engine.ping(p, addr, salt=salt)
                        for p in self.usable_probes
                    }
                obs.counter.inc("measurement.pings", len(cached))
            self._ping_cache[key] = cached
        return cached

    def trace_all(self, addr: IPv4Address) -> dict[int, TracerouteResult]:
        """Traceroute to ``addr`` from every usable probe (cached)."""
        cached = self._trace_cache.get(addr)
        if cached is None:
            fleet = self._fleet()
            with obs.span("world.trace_all", addr=str(addr)):
                if fleet is not None:
                    cached = fleet.trace_all(addr)
                else:
                    cached = {
                        p.probe_id: self.engine.traceroute(p, addr)
                        for p in self.usable_probes
                    }
                obs.counter.inc("measurement.traceroutes", len(cached))
            self._trace_cache[addr] = cached
        return cached

    def resolve_all(
        self, service: GeoMappingService, mode: DnsMode
    ) -> dict[int, IPv4Address]:
        """Resolve a hostname from every usable probe (cached)."""
        key = (service.hostname, mode)
        cached = self._resolve_cache.get(key)
        if cached is None:
            fleet = self._fleet()
            with obs.span("world.resolve_all", hostname=service.hostname,
                          mode=mode.value):
                parallel = (
                    fleet.resolve_all(service, mode)
                    if fleet is not None else None
                )
                # Services not shipped to the workers (ad-hoc ones built
                # inside an experiment) resolve serially.
                cached = parallel if parallel is not None else {
                    p.probe_id: self.resolvers.resolve(service, p, mode)
                    for p in self.usable_probes
                }
            self._resolve_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Group-level aggregates
    # ------------------------------------------------------------------
    def group_median_rtt(
        self, addr: IPv4Address, salt: object = None
    ) -> dict[tuple[str, int], float]:
        """Per-group median RTT to an address."""
        pings = self.ping_all(addr, salt=salt)
        rtts = {
            pid: r.rtt_ms for pid, r in pings.items() if r.rtt_ms is not None
        }
        result: dict[tuple[str, int], float] = {}
        for group in self.groups:
            median = group.median(rtts)
            if median is not None:
                result[group.key] = median
        return result

    def group_received_addr(
        self, service: GeoMappingService, mode: DnsMode
    ) -> dict[tuple[str, int], IPv4Address]:
        """Per-group majority DNS answer for a hostname."""
        answers = self.resolve_all(service, mode)
        result: dict[tuple[str, int], IPv4Address] = {}
        for group in self.groups:
            winner = group.majority({pid: a for pid, a in answers.items()})
            if winner is not None:
                result[group.key] = winner
        return result

    # ------------------------------------------------------------------
    # Site mapping (§4.4)
    # ------------------------------------------------------------------
    def site_mapper(self, published: list[City]) -> SiteMapper:
        return SiteMapper(
            atlas=self.topology.atlas,  # type: ignore[attr-defined]
            rdns=self.rdns,
            databases=self.databases,
            published_sites=published,
        )

    def map_sites_for_address(
        self, addr: IPv4Address, published: list[City]
    ) -> SiteMappingResult:
        """Run the p-hop pipeline over all traces to one address (cached)."""
        key = (addr, tuple(sorted(c.iata for c in published)))
        cached = self._sitemap_cache.get(key)
        if cached is None:
            traces = self.trace_all(addr)
            with obs.span("world.map_sites", addr=str(addr)):
                cached = self.site_mapper(published).map_traces(
                    traces, self.probe_by_id
                )
            self._sitemap_cache[key] = cached
        return cached

    def enumerate_deployment_sites(
        self, deployment: RegionalDeployment
    ) -> dict[str, SiteMappingResult]:
        """Per-region site mapping for a regional deployment."""
        return {
            region: self.map_sites_for_address(
                deployment.address_of_region(region), deployment.published_cities
            )
            for region in deployment.region_names
        }

    def enumerate_global_sites(self, deployment: GlobalDeployment) -> SiteMappingResult:
        return self.map_sites_for_address(
            deployment.address, deployment.published_cities
        )

    # ------------------------------------------------------------------
    # §5.3 observations
    # ------------------------------------------------------------------
    def observations_regional(
        self,
        deployment: RegionalDeployment,
        service: GeoMappingService,
        mode: DnsMode = DnsMode.LDNS,
    ) -> dict[int, ProbeObservation]:
        """Per-probe (RTT, inferred site, p-hop owner) for the regional IP
        each probe received from DNS."""
        answers = self.resolve_all(service, mode)
        observations: dict[int, ProbeObservation] = {}
        for probe in self.usable_probes:
            addr = answers[probe.probe_id]
            observations[probe.probe_id] = self._observe(probe, addr,
                                                         deployment.published_cities)
        return observations

    def observations_global(
        self, deployment: GlobalDeployment
    ) -> dict[int, ProbeObservation]:
        return {
            probe.probe_id: self._observe(
                probe, deployment.address, deployment.published_cities
            )
            for probe in self.usable_probes
        }

    def _observe(
        self, probe: Probe, addr: IPv4Address, published: list[City]
    ) -> ProbeObservation:
        mapping = self.map_sites_for_address(addr, published)
        trace = self.trace_all(addr)[probe.probe_id]
        ping = self.ping_all(addr)[probe.probe_id]
        phop = trace.penultimate_hop
        owner = None
        if phop is not None and phop.addr is not None:
            owner = phop_owner(self.topology, phop.addr)
        return ProbeObservation(
            probe_id=probe.probe_id,
            rtt_ms=ping.rtt_ms,
            site=mapping.catchment_site.get(probe.probe_id),
            peer_owner=owner,
        )


_WORLDS: dict[str, World] = {}


def get_world(config: ExperimentConfig | None = None) -> World:
    """A process-wide cached world per configuration name."""
    cfg = config or DEFAULT
    world = _WORLDS.get(cfg.name)
    if world is None:
        world = World(cfg)
        _WORLDS[cfg.name] = world
    return world
