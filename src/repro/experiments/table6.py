"""Table 6 (Appendix C) — representative vs other hostnames.

For each hostname set, compares the representative hostname's per-area
latency percentiles with the aggregate of 12 additional hostnames served
by the same platform.  In the paper (and here) the distributions are
close, showing the representative hostnames generalise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cdf import percentile
from repro.analysis.report import render_table
from repro.cdn.deployment import RegionalDeployment
from repro.dnssim.resolver import DnsMode
from repro.dnssim.service import GeoMappingService
from repro.experiments.world import World
from repro.geo.areas import AREAS, Area

PERCENTILES = (50, 90, 95)
NUM_EXTRA_HOSTNAMES = 12


@dataclass
class Table6Result:
    experiment_id: str
    #: hostset → area → {percentile → (representative, others_aggregate)}.
    cells: dict[str, dict[Area, dict[int, tuple[float, float]]]] = field(
        default_factory=dict
    )

    def render(self) -> str:
        headers = ["Percentile", "Set", *(a.value for a in AREAS)]
        rows = []
        for p in PERCENTILES:
            for hostset, by_area in self.cells.items():
                row: list[object] = [f"{p}-th", hostset]
                for area in AREAS:
                    pair = by_area.get(area, {}).get(p)
                    row.append("-" if pair is None else f"{pair[0]:.0f} ({pair[1]:.0f})")
                rows.append(row)
        return render_table(
            headers, rows,
            title="== table6: representative (other hostnames) RTT, ms ==",
        )


def _area_rtts(
    world: World,
    deployment: RegionalDeployment,
    service: GeoMappingService,
    salt: object,
) -> dict[Area, list[float]]:
    answers = world.resolve_all(service, DnsMode.LDNS)
    per_probe: dict[int, float] = {}
    for probe in world.usable_probes:
        ping = world.ping_all(answers[probe.probe_id], salt=salt)[probe.probe_id]
        if ping.rtt_ms is not None:
            per_probe[probe.probe_id] = ping.rtt_ms
    by_area: dict[Area, list[float]] = {a: [] for a in AREAS}
    for group in world.groups:
        median = group.median(per_probe)
        if median is not None:
            by_area[group.area].append(median)
    return by_area


def run(world: World) -> Table6Result:
    result = Table6Result(experiment_id="table6")
    combos = [
        ("Edgio-3", world.edgio.eg3, world.eg3_service),
        ("Edgio-4", world.edgio.eg4, world.eg4_service),
        ("Imperva-6", world.imperva.im6, world.im6_service),
    ]
    for name, deployment, service in combos:
        representative = _area_rtts(world, deployment, service, salt=None)
        others: dict[Area, list[float]] = {a: [] for a in AREAS}
        for i in range(NUM_EXTRA_HOSTNAMES):
            extra = _area_rtts(
                world, deployment, service, salt=f"{name}-extra-{i:02d}"
            )
            for area in AREAS:
                others[area].extend(extra[area])
        by_area: dict[Area, dict[int, tuple[float, float]]] = {}
        for area in AREAS:
            if not representative[area] or not others[area]:
                continue
            by_area[area] = {
                p: (
                    percentile(representative[area], p),
                    percentile(others[area], p),
                )
                for p in PERCENTILES
            }
        result.cells[name] = by_area
    return result
