"""§2.2's proposals, actually compared: global vs DailyCatch vs AnyOpt vs
regional anycast (ReOpt) on the Tangled testbed.

The paper argues regional anycast dominates the prior proposals but
leaves the head-to-head "as future work"; with every system implemented
on one substrate, the comparison is one function call.  Expected shape:
DailyCatch picks the better of its two configurations but keeps a tail;
AnyOpt's site subset trims the tail further; latency-based regional
anycast (which can use *all* sites, regionally scoped) wins the tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cdf import percentile
from repro.analysis.report import render_table
from repro.baselines.anyopt import AnyOptResult, anyopt_site_search
from repro.baselines.dailycatch import DailyCatchResult, run_dailycatch
from repro.dnssim.resolver import DnsMode
from repro.dnssim.route53 import GeoPolicyZone
from repro.experiments.world import World
from repro.geo.areas import Area
from repro.tangled.reopt import ReOpt


@dataclass
class BaselinesResult:
    experiment_id: str
    #: strategy → probe id → RTT ms.
    rtts: dict[str, dict[int, float]] = field(default_factory=dict)
    dailycatch: DailyCatchResult = None
    anyopt: AnyOptResult = None

    def area_percentile(self, strategy: str, area: Area, p: int,
                        world: World) -> float | None:
        values = []
        by_probe = self.rtts[strategy]
        for group in world.groups:
            if group.area is not area:
                continue
            median = group.median(by_probe)
            if median is not None:
                values.append(median)
        return percentile(values, p) if values else None

    def overall_percentile(self, strategy: str, p: int) -> float:
        return percentile(list(self.rtts[strategy].values()), p)

    def render(self) -> str:
        rows = []
        for strategy in self.rtts:
            rows.append(
                [
                    strategy,
                    len(self.rtts[strategy]),
                    f"{self.overall_percentile(strategy, 50):.0f}",
                    f"{self.overall_percentile(strategy, 90):.0f}",
                    f"{self.overall_percentile(strategy, 95):.0f}",
                ]
            )
        table = render_table(
            ["Strategy", "probes", "p50", "p90", "p95"],
            rows,
            title="== sec2.2 baselines on Tangled (per-probe RTT, ms) ==",
        )
        notes = (
            f"DailyCatch chose: {self.dailycatch.chosen} "
            f"(transit-only p90 {self.dailycatch.transit_only_metric:.0f} vs "
            f"all-neighbors p90 {self.dailycatch.all_neighbors_metric:.0f})\n"
            f"AnyOpt kept {len(self.anyopt.chosen_sites)}/12 sites "
            f"({' '.join(self.anyopt.chosen_sites)}), "
            f"improvement {100.0 * self.anyopt.improvement:.1f}%"
        )
        return f"{table}\n{notes}"


def run(world: World) -> BaselinesResult:
    result = BaselinesResult(experiment_id="sec22-baselines")
    network = world.tangled.network
    site_names = world.tangled.site_names
    probes = world.usable_probes

    # Plain global anycast: the paper's baseline.
    global_addr = world.tangled.global_deployment.address
    result.rtts["global-anycast"] = {
        pid: r.rtt_ms
        for pid, r in world.ping_all(global_addr).items()
        if r.rtt_ms is not None
    }

    # DailyCatch: better of transit-only vs all-neighbors.
    result.dailycatch = run_dailycatch(network, site_names, world.engine, probes)
    result.rtts["dailycatch"] = result.dailycatch.chosen_rtts

    # AnyOpt: best measured site subset.
    result.anyopt = anyopt_site_search(network, site_names, world.engine, probes)
    result.rtts["anyopt-subset"] = result.anyopt.chosen_rtts

    # Regional anycast with ReOpt + Route-53-style mapping (§6).
    reopt = ReOpt(world.tangled, world.engine, probes)
    best, _ = reopt.sweep((3, 6))
    deployment = reopt.deploy(best)
    for announcement in deployment.announcements():
        if world.registry.lookup(announcement.prefix.address(1)) is None:
            world.registry.register(announcement)
    zone = GeoPolicyZone.from_country_mapping(
        "baselines-reopt.example",
        world.route53_db,
        {
            country: deployment.address_of_region(region)
            for country, region in best.region_of_country.items()
        },
        default=deployment.address_of_region(best.default_region),
    )
    regional: dict[int, float] = {}
    for probe in probes:
        addr = zone.answer_for_source(
            world.resolvers.query_source(probe, DnsMode.LDNS)
        )
        ping = world.ping_all(addr)[probe.probe_id]
        if ping.rtt_ms is not None:
            regional[probe.probe_id] = ping.rtt_ms
    result.rtts["regional-reopt"] = regional
    return result
