"""Load distribution: Imperva global vs regional catchments.

Quantifies the §6.2 closing observation: a regional prefix covers
multiple sites, and within each region plain anycast spreads the load —
so an operator trading DNS-per-site mapping for regional anycast keeps
load dispersion while shedding the mapping machinery.  We compare how
evenly the *same* site set is loaded under the global prefix vs under
the union of regional prefixes (each client counted at the regional IP
DNS hands it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.load import LoadDistribution, load_distribution
from repro.analysis.report import render_table
from repro.dnssim.resolver import DnsMode
from repro.experiments.world import World
from repro.measurement.engine import PingResult


@dataclass
class LoadBalanceResult:
    experiment_id: str
    distributions: dict[str, LoadDistribution] = field(default_factory=dict)
    #: site name → (global share, regional share), largest global first.
    top_sites: list[tuple[str, float, float]] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            [
                dist.label,
                dist.total,
                dist.num_sites,
                dist.empty_sites,
                f"{100.0 * dist.max_share:.1f}%",
                f"{dist.coefficient_of_variation:.2f}",
            ]
            for dist in self.distributions.values()
        ]
        table = render_table(
            ["Configuration", "Probes", "Sites", "Empty", "Max site share",
             "Load CV"],
            rows,
            title="== load balance: Imperva global vs regional catchments ==",
        )
        top = render_table(
            ["Site", "Global share", "Regional share"],
            [
                [name, f"{100.0 * g:.1f}%", f"{100.0 * r:.1f}%"]
                for name, g, r in self.top_sites[:8]
            ],
            title="largest catchments",
        )
        return f"{table}\n\n{top}"


def run(world: World) -> LoadBalanceResult:
    result = LoadBalanceResult(experiment_id="load-balance")
    network = world.imperva.network
    ns = world.imperva.ns
    im6 = world.imperva.im6

    global_pings = world.ping_all(ns.address)
    ns_nodes = [network.site(n).node_id for n in ns.site_names]
    result.distributions["global (IM-NS)"] = load_distribution(
        "global (IM-NS)", global_pings, ns_nodes
    )

    # Regional: each probe counted at the regional address DNS returns.
    answers = world.resolve_all(world.im6_service, DnsMode.LDNS)
    regional_pings: dict[int, PingResult] = {}
    for probe in world.usable_probes:
        regional_pings[probe.probe_id] = world.ping_all(
            answers[probe.probe_id]
        )[probe.probe_id]
    im6_nodes = [s.node_id for s in im6.deployed_sites()]
    result.distributions["regional (IM-6)"] = load_distribution(
        "regional (IM-6)", regional_pings, im6_nodes
    )

    global_dist = result.distributions["global (IM-NS)"]
    regional_dist = result.distributions["regional (IM-6)"]
    name_of = {network.site(n).node_id: n for n in network.site_names()}
    ranked = sorted(
        set(global_dist.load) | set(regional_dist.load),
        key=lambda node: -global_dist.share_of(node),
    )
    result.top_sites = [
        (name_of.get(node, str(node)),
         global_dist.share_of(node),
         regional_dist.share_of(node))
        for node in ranked
    ]
    return result
