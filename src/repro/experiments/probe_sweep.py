"""Vantage-point sufficiency: how many probes does enumeration need?

The paper's site enumeration depends on RIPE Atlas's footprint, and its
related work asks "how many sites are enough" from the latency side
(de O. Schmidt et al., cited as [22]).  The mirror question for the
methodology is *how many probes are enough to see all the sites*: each
probe only reveals its own catchment, so small vantage sets miss sites
with small catchments.

This experiment subsamples the probe population at several sizes, runs
the full §4.4 pipeline against Imperva-NS at each size, and reports the
enumeration completeness curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.experiments.world import World

DEFAULT_SIZES = (50, 100, 250, 500, 1000, 2000)


@dataclass
class ProbeSweepResult:
    experiment_id: str
    #: probe-sample size → (sites enumerated, distinct true catchments).
    curve: dict[int, tuple[int, int]] = field(default_factory=dict)
    published_sites: int = 0

    def render(self) -> str:
        rows = [
            [size, found, true_catchments,
             f"{100.0 * found / self.published_sites:.0f}%"]
            for size, (found, true_catchments) in sorted(self.curve.items())
        ]
        return render_table(
            ["Probes", "Sites enumerated", "True catchments in sample",
             "Completeness"],
            rows,
            title=f"== probe sweep: enumeration completeness vs vantage "
                  f"points ({self.published_sites} published sites) ==",
        )

    def completeness_at(self, size: int) -> float:
        found, _ = self.curve[size]
        return found / self.published_sites


def run(world: World, sizes: tuple[int, ...] = DEFAULT_SIZES) -> ProbeSweepResult:
    ns = world.imperva.ns
    addr = ns.address
    all_traces = world.trace_all(addr)
    mapper = world.site_mapper(ns.published_cities)
    rng = random.Random(world.config.measurement_seed + 77)
    probes = list(world.usable_probes)
    result = ProbeSweepResult(
        experiment_id="probe-sweep",
        published_sites=len(ns.published_cities),
    )
    for size in sizes:
        if size > len(probes):
            size = len(probes)
        sample = rng.sample(probes, size)
        sample_ids = {p.probe_id for p in sample}
        traces = {
            pid: trace for pid, trace in all_traces.items()
            if pid in sample_ids
        }
        mapping = mapper.map_traces(
            traces, {p.probe_id: p for p in sample}
        )
        true_catchments = len(
            {
                trace.path.dest_city.iata
                for trace in traces.values()
                if trace.path is not None
            }
        )
        result.curve[size] = (len(mapping.sites), true_catchments)
        if size == len(probes):
            break
    return result
