"""Table 2 — DNS mapping efficiency under LDNS and ADNS.

For each hostname set (Edgio-3, Edgio-4, Imperva-6), each DNS mode, and
each probe area: the fraction of probe groups whose returned regional IP
is within 5 ms of their best regional IP, mapped to the intended region
but ≥ 5 ms slower (✓Region), or mapped outside the intended region
(×Region).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.mapping import (
    MappingClass,
    MappingEfficiency,
    classify_mapping,
)
from repro.analysis.report import render_table
from repro.cdn.deployment import RegionalDeployment
from repro.dnssim.resolver import DnsMode
from repro.dnssim.service import GeoMappingService
from repro.experiments.world import World
from repro.geo.areas import AREAS, Area


@dataclass
class Table2Result:
    experiment_id: str
    #: (hostset, mode) → MappingEfficiency.
    efficiencies: dict[tuple[str, DnsMode], MappingEfficiency] = field(
        default_factory=dict
    )

    def fraction(
        self, hostset: str, mode: DnsMode, area: Area, outcome: MappingClass
    ) -> float:
        return self.efficiencies[(hostset, mode)].fraction(area, outcome)

    def render(self) -> str:
        headers = ["Condition", "CDN", "Mode", *(a.value for a in AREAS)]
        rows = []
        for outcome in MappingClass:
            for hostset in ("Edgio-3", "Edgio-4", "Imperva-6"):
                for mode in (DnsMode.LDNS, DnsMode.ADNS):
                    eff = self.efficiencies[(hostset, mode)]
                    rows.append(
                        [
                            outcome.value,
                            hostset,
                            "LDNS" if mode is DnsMode.LDNS else "ADNS",
                            *(
                                f"{100.0 * eff.fraction(a, outcome):.1f}%"
                                for a in AREAS
                            ),
                        ]
                    )
        return render_table(headers, rows, title="== table2: DNS mapping efficiency ==")


def mapping_efficiency(
    world: World,
    deployment: RegionalDeployment,
    service: GeoMappingService,
    mode: DnsMode,
) -> MappingEfficiency:
    """Classify every probe group for one (deployment, DNS mode)."""
    received = world.group_received_addr(service, mode)
    rtts_by_addr = {
        addr: world.group_median_rtt(addr)
        for addr in deployment.regional_addresses()
    }
    records = []
    for group in world.groups:
        addr = received.get(group.key)
        if addr is None:
            continue
        rtt_by_addr = {
            a: rtts[group.key]
            for a, rtts in rtts_by_addr.items()
            if group.key in rtts
        }
        if not rtt_by_addr:
            continue
        record = classify_mapping(deployment, group, addr, rtt_by_addr)
        if record is not None:
            records.append(record)
    return MappingEfficiency(groups=records)


def run(world: World) -> Table2Result:
    result = Table2Result(experiment_id="table2")
    combos = [
        ("Edgio-3", world.edgio.eg3, world.eg3_service),
        ("Edgio-4", world.edgio.eg4, world.eg4_service),
        ("Imperva-6", world.imperva.im6, world.im6_service),
    ]
    for name, deployment, service in combos:
        for mode in (DnsMode.LDNS, DnsMode.ADNS):
            result.efficiencies[(name, mode)] = mapping_efficiency(
                world, deployment, service, mode
            )
    return result
