"""Fig. 4 — client latency and catchment-distance CDFs.

Three panels, each with an RTT CDF and a distance CDF per probe area:

- (a) Edgio-3 vs Edgio-4 — LatAm improves markedly in Edgio-4 because
  South American clients get their own regional prefix;
- (b) Imperva-6;
- (c) Imperva-6 vs Imperva-NS restricted to overlapping sites and peers.

RTT is the group-median RTT to the DNS-returned regional IP; distance is
the group-median great-circle distance from probe to its *inferred*
catchment site (§4.4 pipeline output).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cdf import EmpiricalCDF
from repro.analysis.report import render_table
from repro.cdn.deployment import RegionalDeployment
from repro.dnssim.resolver import DnsMode
from repro.dnssim.service import GeoMappingService
from repro.experiments.compare53 import build_comparison
from repro.experiments.world import World
from repro.geo.areas import AREAS, Area


@dataclass
class AreaCdfs:
    """RTT and distance CDFs for one (network, area)."""

    rtt: EmpiricalCDF | None
    distance_km: EmpiricalCDF | None


@dataclass
class Fig4Result:
    experiment_id: str
    #: series name (e.g. "EG3", "EG4", "IM6", "IM6-filtered", "IM-NS") →
    #: area → CDFs.
    series: dict[str, dict[Area, AreaCdfs]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Series", "Area", "n", "RTT p50", "RTT p90", "RTT p98",
                   "km p50", "km p90", ">100ms"]
        rows = []
        for name, by_area in self.series.items():
            for area in AREAS:
                cdfs = by_area.get(area)
                if cdfs is None or cdfs.rtt is None:
                    continue
                rtt, dist = cdfs.rtt, cdfs.distance_km
                rows.append(
                    [
                        name,
                        area.value,
                        len(rtt),
                        f"{rtt.percentile(50):.0f}",
                        f"{rtt.percentile(90):.0f}",
                        f"{rtt.percentile(98):.0f}",
                        f"{dist.percentile(50):.0f}" if dist else "-",
                        f"{dist.percentile(90):.0f}" if dist else "-",
                        f"{100.0 * rtt.fraction_above(100.0):.1f}%",
                    ]
                )
        return render_table(headers, rows,
                            title="== fig4: latency and distance CDFs ==")

    def render_plot(self, area: Area = Area.EMEA) -> str:
        """ASCII RTT CDF plot for one area across all series."""
        from repro.analysis.asciiplot import render_cdf_plot

        curves = {
            name: by_area[area].rtt
            for name, by_area in self.series.items()
            if by_area.get(area) is not None and by_area[area].rtt is not None
        }
        return render_cdf_plot(
            curves, title=f"fig4: RTT CDFs, {area.value} groups"
        )


def group_rtt_distance(
    world: World,
    deployment: RegionalDeployment,
    service: GeoMappingService,
    mode: DnsMode = DnsMode.LDNS,
) -> dict[tuple[str, int], tuple[float, float]]:
    """Per-group (median RTT, median distance) to the DNS-returned IP."""
    answers = world.resolve_all(service, mode)
    per_probe_rtt: dict[int, float] = {}
    per_probe_dist: dict[int, float] = {}
    for probe in world.usable_probes:
        addr = answers[probe.probe_id]
        ping = world.ping_all(addr)[probe.probe_id]
        if ping.rtt_ms is None:
            continue
        per_probe_rtt[probe.probe_id] = ping.rtt_ms
        mapping = world.map_sites_for_address(addr, deployment.published_cities)
        site = mapping.catchment_site.get(probe.probe_id)
        if site is not None:
            per_probe_dist[probe.probe_id] = probe.location.distance_km(site.location)
    result: dict[tuple[str, int], tuple[float, float]] = {}
    for group in world.groups:
        rtt = group.median(per_probe_rtt)
        dist = group.median(per_probe_dist)
        if rtt is not None and dist is not None:
            result[group.key] = (rtt, dist)
    return result


def _cdfs_by_area(
    world: World, values: dict[tuple[str, int], tuple[float, float]]
) -> dict[Area, AreaCdfs]:
    area_of_group = {g.key: g.area for g in world.groups}
    by_area: dict[Area, AreaCdfs] = {}
    for area in AREAS:
        rtts = [v[0] for k, v in values.items() if area_of_group.get(k) is area]
        dists = [v[1] for k, v in values.items() if area_of_group.get(k) is area]
        by_area[area] = AreaCdfs(
            rtt=EmpiricalCDF.of(rtts) if rtts else None,
            distance_km=EmpiricalCDF.of(dists) if dists else None,
        )
    return by_area


def run(world: World) -> Fig4Result:
    result = Fig4Result(experiment_id="fig4")
    result.series["EG3"] = _cdfs_by_area(
        world, group_rtt_distance(world, world.edgio.eg3, world.eg3_service)
    )
    result.series["EG4"] = _cdfs_by_area(
        world, group_rtt_distance(world, world.edgio.eg4, world.eg4_service)
    )
    result.series["IM6"] = _cdfs_by_area(
        world, group_rtt_distance(world, world.imperva.im6, world.im6_service)
    )
    # Panel (c): the overlap-filtered comparison.
    comparison = build_comparison(world)
    filtered_reg: dict[Area, AreaCdfs] = {}
    filtered_glob: dict[Area, AreaCdfs] = {}
    for area in AREAS:
        in_area = comparison.in_area(area)
        if in_area:
            filtered_reg[area] = AreaCdfs(
                rtt=EmpiricalCDF.of([g.rtt_regional_ms for g in in_area]),
                distance_km=EmpiricalCDF.of([g.dist_regional_km for g in in_area]),
            )
            filtered_glob[area] = AreaCdfs(
                rtt=EmpiricalCDF.of([g.rtt_global_ms for g in in_area]),
                distance_km=EmpiricalCDF.of([g.dist_global_km for g in in_area]),
            )
    result.series["IM6-overlap"] = filtered_reg
    result.series["IM-NS-overlap"] = filtered_glob
    return result
