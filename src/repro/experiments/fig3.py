"""Fig. 3 — p-hop geolocation technique mix.

For each measured network (EG-3, EG-4, IM-6, IM-NS): the fraction of
distinct p-hops resolved by each pipeline technique, and the fraction of
traceroutes whose p-hop was resolved by each technique.  The paper
resolves the majority of p-hops and leaves 2.3–9.9% of valid traces
unresolved.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.experiments.world import World
from repro.sitemap.pipeline import Technique


@dataclass
class Fig3Result:
    experiment_id: str
    #: network → ("phops"/"traces" → technique → fraction).
    bars: dict[str, dict[str, dict[Technique, float]]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["Network", "Bar", *(t.value for t in Technique)]
        rows = []
        for network, bar_pair in self.bars.items():
            for bar, fractions in bar_pair.items():
                rows.append(
                    [network, bar]
                    + [f"{100.0 * fractions.get(t, 0.0):.1f}%" for t in Technique]
                )
        return render_table(
            headers, rows, title="== fig3: p-hop geolocation techniques =="
        )


def _merge(counters: list[Counter]) -> Counter:
    merged: Counter = Counter()
    for c in counters:
        merged.update(c)
    return merged


def _fractions(counter: Counter) -> dict[Technique, float]:
    total = sum(counter.values())
    if total == 0:
        return {t: 0.0 for t in Technique}
    return {t: counter.get(t, 0) / total for t in Technique}


def run(world: World) -> Fig3Result:
    result = Fig3Result(experiment_id="fig3")
    networks = {
        "EG-3": world.enumerate_deployment_sites(world.edgio.eg3).values(),
        "EG-4": world.enumerate_deployment_sites(world.edgio.eg4).values(),
        "IM-6": world.enumerate_deployment_sites(world.imperva.im6).values(),
        "IM-NS": [world.enumerate_global_sites(world.imperva.ns)],
    }
    for name, mappings in networks.items():
        mappings = list(mappings)
        phops = _merge([m.phops_by_technique for m in mappings])
        traces = _merge([m.traces_by_technique for m in mappings])
        result.bars[name] = {
            "p-hops": _fractions(phops),
            "traces": _fractions(traces),
        }
    return result
