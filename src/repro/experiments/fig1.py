"""Fig. 1 — the catchment-inefficiency example.

A Washington-D.C. probe under global anycast reaches the Singapore site
(its provider prefers the customer route through a SingTel-like transit),
while the regional U.S. prefix sends it to Ashburn at a fraction of the
RTT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import render_table
from repro.experiments.micro import MicroScenario, fig1_scenario
from repro.experiments.world import World


@dataclass
class MicroCaseResult:
    experiment_id: str
    title: str
    global_site: str
    global_rtt_ms: float
    regional_site: str
    regional_rtt_ms: float

    @property
    def inflation_ms(self) -> float:
        return self.global_rtt_ms - self.regional_rtt_ms

    def render(self) -> str:
        table = render_table(
            ["Configuration", "Catchment site", "RTT (ms)"],
            [
                ["Global anycast", self.global_site, f"{self.global_rtt_ms:.0f}"],
                ["Regional anycast", self.regional_site, f"{self.regional_rtt_ms:.0f}"],
            ],
            title=f"== {self.experiment_id}: {self.title} ==",
        )
        return f"{table}\nlatency inflation removed: {self.inflation_ms:.0f} ms"


def run_scenario(scenario: MicroScenario, experiment_id: str, title: str) -> MicroCaseResult:
    global_city, global_rtt = scenario.catchment_and_rtt(scenario.global_addr)
    regional_city, regional_rtt = scenario.catchment_and_rtt(scenario.regional_addr)
    return MicroCaseResult(
        experiment_id=experiment_id,
        title=title,
        global_site=str(global_city),
        global_rtt_ms=global_rtt,
        regional_site=str(regional_city),
        regional_rtt_ms=regional_rtt,
    )


def run(world: World | None = None) -> MicroCaseResult:
    """The world is unused — the case is a self-contained micro-topology —
    but the signature matches the other experiments for the runner."""
    return run_scenario(
        fig1_scenario(),
        "fig1",
        "customer-route preference pulls a D.C. probe to Singapore",
    )
