"""Table 3 — tail latency: Imperva-6 vs Imperva-NS.

80th/90th/95th percentile group RTT per area, regional vs global, over
the overlap-filtered comparison population.  The paper's headline: the
90th percentile in NA drops from 110 ms (global) to 38 ms (regional),
while LatAm regresses slightly (93 → 102 ms) due to DNS mapping
inefficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import render_table
from repro.experiments.compare53 import build_comparison
from repro.experiments.world import World
from repro.geo.areas import AREAS, Area

PERCENTILES = (80, 90, 95)


@dataclass
class Table3Result:
    experiment_id: str
    #: area → {percentile → (regional_ms, global_ms)}.
    cells: dict[Area, dict[int, tuple[float, float]]] = field(default_factory=dict)
    retained_fraction: float = 0.0

    def render(self) -> str:
        headers = ["Percentile", *(a.value for a in AREAS)]
        rows = []
        for p in PERCENTILES:
            row: list[object] = [f"{p}-th"]
            for area in AREAS:
                pair = self.cells.get(area, {}).get(p)
                row.append("-" if pair is None else f"{pair[0]:.0f} ({pair[1]:.0f})")
            rows.append(row)
        table = render_table(
            headers, rows,
            title="== table3: Imperva-6 (Imperva-NS) tail latency, ms ==",
        )
        return f"{table}\nretained groups after overlap filtering: " \
               f"{100.0 * self.retained_fraction:.1f}%"


def run(world: World) -> Table3Result:
    comparison = build_comparison(world)
    result = Table3Result(
        experiment_id="table3",
        retained_fraction=comparison.filter_stats.retained_fraction,
    )
    for area in AREAS:
        cells = comparison.tail_latency(area, PERCENTILES)
        if cells:
            result.cells[area] = cells
    return result
