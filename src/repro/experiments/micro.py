"""Hand-built micro-topologies for the paper's two illustrative cases.

These are the smallest worlds in which the two BGP pathologies appear:

- :func:`fig1_scenario` — the Washington-D.C. probe whose provider
  (a Zayo-like transit) prefers its *customer* SingTel's route to the
  Singapore site over its *peer* Level 3's route to the Ashburn site;
- :func:`fig7_scenario` — the Belarusian AS 6697 that prefers its
  *public* peer's (Zayo's) route — which leads to Singapore — over the
  *route-server* route straight to the Frankfurt site at a DE-CIX-like
  exchange.

Both scenarios expose a global and a regional configuration so callers
(Fig. 1 / Fig. 7 experiments, examples, and tests) can verify that the
regional prefix flips the catchment and collapses the RTT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.atlas import City, load_default_atlas
from repro.geo.coords import GeoPoint
from repro.measurement.engine import MeasurementEngine, ServiceRegistry
from repro.measurement.probes import Probe
from repro.netaddr.ipv4 import IPv4Address
from repro.routing.route import Announcement, OriginSpec
from repro.topology.asys import (
    AutonomousSystem,
    Interconnect,
    Link,
    LinkKind,
    PoP,
    Tier,
)
from repro.topology.builder import AddressPlan
from repro.topology.graph import Topology
from repro.topology.ixp import IXP


@dataclass
class MicroScenario:
    """A hand-built world with one probe and two prefix configurations."""

    topology: Topology
    engine: MeasurementEngine
    probe: Probe
    global_addr: IPv4Address
    regional_addr: IPv4Address
    #: site name → city, for reporting catchments.
    site_city: dict[int, City]

    def catchment_and_rtt(self, addr: IPv4Address) -> tuple[City, float]:
        ping = self.engine.ping(self.probe, addr)
        if ping.rtt_ms is None or ping.catchment is None:
            raise RuntimeError(f"probe cannot reach {addr}")
        return self.site_city[ping.catchment], ping.rtt_ms


class _MicroBuilder:
    """Imperative construction helpers over the core topology types."""

    def __init__(self) -> None:
        self.topology = Topology()
        self.plan = AddressPlan.default()
        self.atlas = load_default_atlas()
        self.topology.address_plan = self.plan  # type: ignore[attr-defined]
        self.topology.atlas = self.atlas  # type: ignore[attr-defined]
        self._next_node = 1

    def add_as(
        self, name: str, tier: Tier, home: str, iatas: list[str], node_id: int | None = None
    ) -> AutonomousSystem:
        nid = node_id if node_id is not None else self._next_node
        self._next_node = max(self._next_node, nid) + 1
        node = AutonomousSystem(
            node_id=nid,
            asn=nid,
            name=name,
            tier=tier,
            home_country=home,
            pops=tuple(PoP(city=self.atlas.get(i)) for i in iatas),
            infra_prefix=self.plan.infra.allocate(22),
        )
        self.topology.add_node(node)
        return node

    def add_site(
        self, name: str, asn: int, iata: str
    ) -> AutonomousSystem:
        node = AutonomousSystem(
            node_id=self._next_node + 1_000_000,
            asn=asn,
            name=name,
            tier=Tier.CDN,
            home_country=self.atlas.get(iata).country,
            pops=(PoP(city=self.atlas.get(iata)),),
            infra_prefix=self.plan.infra.allocate(24),
        )
        self._next_node += 1
        self.topology.add_node(node)
        return node

    def link(
        self,
        a: AutonomousSystem,
        b: AutonomousSystem,
        kind: LinkKind,
        iata: str,
        ixp: IXP | None = None,
        extra_ms: float = 0.5,
    ) -> None:
        city = self.atlas.get(iata)
        if ixp is not None:
            addr_a = ixp.allocate_lan_address()
            addr_b = ixp.allocate_lan_address()
        else:
            addr_a = self.plan.infra_for(a).allocate(32).network_address
            addr_b = self.plan.infra_for(b).allocate(32).network_address
        self.topology.add_link(
            Link(
                a=a.node_id,
                b=b.node_id,
                kind=kind,
                interconnects=(
                    Interconnect(city=city, addr_a=addr_a, addr_b=addr_b,
                                 extra_ms=extra_ms),
                ),
                ixp_id=ixp.ixp_id if ixp is not None else None,
            )
        )

    def probe_at(self, node: AutonomousSystem, point: GeoPoint) -> Probe:
        prefix = self.plan.hosts.allocate(24)
        return Probe(
            probe_id=0,
            addr=prefix.address(1),
            as_node=node.node_id,
            country=node.home_country,
            location=point,
            reported_location=point,
            city_code=self.atlas.nearest(point, node.home_country).iata,
            stable=True,
            geocode_reliable=True,
            last_mile_ms=1.0,
        )


def _finish(
    builder: _MicroBuilder,
    probe: Probe,
    global_ann: Announcement,
    regional_ann: Announcement,
    sites: list[AutonomousSystem],
) -> MicroScenario:
    registry = ServiceRegistry()
    registry.register(global_ann)
    registry.register(regional_ann)
    engine = MeasurementEngine(
        builder.topology, registry, seed=0, jitter_fraction=0.0,
        hop_silent_fraction=0.0,
    )
    return MicroScenario(
        topology=builder.topology,
        engine=engine,
        probe=probe,
        global_addr=global_ann.prefix.address(1),
        regional_addr=regional_ann.prefix.address(1),
        site_city={s.node_id: s.pops[0].city for s in sites},
    )


def fig1_scenario() -> MicroScenario:
    """The Fig. 1 customer-over-peer catchment inefficiency."""
    b = _MicroBuilder()
    zayo = b.add_as("zayo-like", Tier.TIER1, "US", ["DCA", "LAX", "JFK"])
    level3 = b.add_as("level3-like", Tier.TIER1, "US", ["IAD", "DCA", "LAX"])
    singtel = b.add_as("singtel-like", Tier.TRANSIT, "SG", ["SIN", "LAX"])
    client = b.add_as("as10745-like", Tier.STUB, "US", ["DCA"])
    cdn_asn = 19551
    site_iad = b.add_site("imperva-iad", cdn_asn, "IAD")
    site_sin = b.add_site("imperva-sin", cdn_asn, "SIN")
    b.link(zayo, level3, LinkKind.PEER_PRIVATE, "DCA")  # peers
    b.link(singtel, zayo, LinkKind.TRANSIT, "LAX")  # SingTel buys from Zayo
    b.link(client, zayo, LinkKind.TRANSIT, "DCA")  # probe's provider
    b.link(site_iad, level3, LinkKind.TRANSIT, "IAD")  # Ashburn site
    b.link(site_sin, singtel, LinkKind.TRANSIT, "SIN")  # Singapore site
    global_prefix = b.plan.services.allocate(24)
    regional_prefix = b.plan.services.allocate(24)
    global_ann = Announcement(
        prefix=global_prefix,
        origins=(
            OriginSpec(site_node=site_iad.node_id),
            OriginSpec(site_node=site_sin.node_id),
        ),
    )
    regional_ann = Announcement(  # the U.S. regional prefix
        prefix=regional_prefix,
        origins=(OriginSpec(site_node=site_iad.node_id),),
    )
    probe = b.probe_at(client, b.atlas.get("DCA").location)
    return _finish(b, probe, global_ann, regional_ann, [site_iad, site_sin])


def fig7_scenario() -> MicroScenario:
    """The Fig. 7 public-peer-over-route-server inefficiency."""
    b = _MicroBuilder()
    zayo = b.add_as("zayo-like", Tier.TIER1, "US", ["FRA", "LAX"])
    twelve99 = b.add_as("twelve99-like", Tier.TIER1, "SE", ["FRA", "AMS", "ARN"])
    singtel = b.add_as("singtel-like", Tier.TRANSIT, "SG", ["SIN", "LAX"])
    client = b.add_as("as6697-like", Tier.STUB, "BY", ["MSQ", "FRA"])
    cdn_asn = 19551
    site_ams = b.add_site("imperva-ams", cdn_asn, "AMS")
    site_fra = b.add_site("imperva-fra", cdn_asn, "FRA")
    site_sin = b.add_site("imperva-sin", cdn_asn, "SIN")
    decix = IXP(
        ixp_id=1,
        name="DE-CIX-like",
        city=b.atlas.get("FRA"),
        lan_prefix=b.plan.ixp_lans.allocate(24),
        publishes_route_server_feed=True,
    )
    b.topology.add_ixp(decix)
    for member in (zayo, client, site_fra):
        decix.join(member.node_id, route_server=True)
    b.link(zayo, twelve99, LinkKind.PEER_PRIVATE, "FRA")
    b.link(singtel, zayo, LinkKind.TRANSIT, "LAX")
    b.link(client, twelve99, LinkKind.TRANSIT, "FRA")  # transit provider
    b.link(client, zayo, LinkKind.PEER_PUBLIC, "FRA", ixp=decix)  # public peer
    b.link(client, site_fra, LinkKind.PEER_ROUTE_SERVER, "FRA", ixp=decix)
    b.link(site_ams, twelve99, LinkKind.TRANSIT, "AMS")
    b.link(site_fra, twelve99, LinkKind.TRANSIT, "FRA")
    b.link(site_sin, singtel, LinkKind.TRANSIT, "SIN")
    global_prefix = b.plan.services.allocate(24)
    regional_prefix = b.plan.services.allocate(24)
    global_ann = Announcement(
        prefix=global_prefix,
        origins=(
            OriginSpec(site_node=site_ams.node_id),
            OriginSpec(site_node=site_fra.node_id),
            OriginSpec(site_node=site_sin.node_id),
        ),
    )
    regional_ann = Announcement(  # the EMEA regional prefix
        prefix=regional_prefix,
        origins=(
            OriginSpec(site_node=site_ams.node_id),
            OriginSpec(site_node=site_fra.node_id),
        ),
    )
    probe = b.probe_at(client, b.atlas.get("MSQ").location)
    return _finish(b, probe, global_ann, regional_ann,
                   [site_ams, site_fra, site_sin])
