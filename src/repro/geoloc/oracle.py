"""Ground-truth address attribution.

The oracle knows where every simulated address really is.  It is the
substrate under the *error-prone* geolocation databases and under DNS
geo-mapping; experiment analysis code follows the paper's methodology and
only consults the databases, rDNS, and measurements — never the oracle —
except where the paper itself uses ground truth (probe built-in geocodes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro import obs
from repro.geo.atlas import City
from repro.geo.coords import GeoPoint
from repro.measurement.probes import ProbePopulation
from repro.netaddr.ipv4 import IPv4Address, IPv4Prefix
from repro.topology.graph import Topology


class AddressKind(enum.Enum):
    """What a simulated address belongs to."""

    ROUTER = "router"  # interface in an AS's infrastructure space
    IXP_LAN = "ixp-lan"  # interface on an IXP peering LAN
    PROBE = "probe"  # a probe's host address
    HOST_SUBNET = "host-subnet"  # an address in a stub's host space
    SERVICE = "service"  # an anycast service prefix address


@dataclass(frozen=True)
class AddressAttribution:
    """Ground truth for one address."""

    addr: IPv4Address
    kind: AddressKind
    country: str
    location: GeoPoint
    #: Topology node owning the address (IXP-LAN addresses attribute to the
    #: interface's node; service addresses to the announcement's first
    #: origin; host addresses to the stub AS).
    owner_node: int | None
    #: The owner's registered home country — what lazy geolocation data
    #: often reports for infrastructure deployed abroad.
    owner_home_country: str | None
    city: City | None = None
    ixp_id: int | None = None


class GeoOracle:
    """Resolves any simulated address to its ground truth."""

    def __init__(self, topology: Topology, probes: ProbePopulation | None = None):
        self._topology = topology
        self._probes = probes
        # Host-subnet index: /24 -> (as_node, city) for every probe subnet,
        # used to attribute ECS client subnets.
        self._subnets: dict[IPv4Prefix, tuple[int, City]] = {}
        if probes is not None:
            for as_node, prefix in probes.host_prefixes().items():
                city = topology.node(as_node).pops[0].city
                for subnet in prefix.subnets(24):
                    self._subnets[subnet] = (as_node, city)

    # ------------------------------------------------------------------
    def attribute(self, addr: IPv4Address) -> AddressAttribution | None:
        """Ground truth for an address, or None for unknown space."""
        obs.counter.inc("geoloc.oracle_lookups")
        info = self._topology.interface_info(addr)
        if info is not None:
            node = self._topology.node(info.node_id)
            kind = AddressKind.IXP_LAN if info.ixp_id is not None else AddressKind.ROUTER
            return AddressAttribution(
                addr=addr,
                kind=kind,
                country=info.city.country,
                location=info.city.location,
                owner_node=info.node_id,
                owner_home_country=node.home_country,
                city=info.city,
                ixp_id=info.ixp_id,
            )
        if self._probes is not None:
            probe = self._probes.probe_by_addr(addr)
            if probe is not None:
                node = self._topology.node(probe.as_node)
                return AddressAttribution(
                    addr=addr,
                    kind=AddressKind.PROBE,
                    country=probe.country,
                    location=probe.location,
                    owner_node=probe.as_node,
                    owner_home_country=node.home_country,
                    city=None,
                )
            subnet = IPv4Prefix(addr.value & ~0xFF, 24)
            owner = self._subnets.get(subnet)
            if owner is not None:
                as_node, city = owner
                node = self._topology.node(as_node)
                return AddressAttribution(
                    addr=addr,
                    kind=AddressKind.HOST_SUBNET,
                    country=city.country,
                    location=city.location,
                    owner_node=as_node,
                    owner_home_country=node.home_country,
                    city=city,
                )
        return None

    def attribute_subnet(self, subnet: IPv4Prefix) -> AddressAttribution | None:
        """Ground truth for a client /24 (as carried in EDNS Client Subnet)."""
        obs.counter.inc("geoloc.oracle_subnet_lookups")
        owner = self._subnets.get(subnet)
        if owner is None:
            return None
        as_node, city = owner
        node = self._topology.node(as_node)
        return AddressAttribution(
            addr=subnet.network_address,
            kind=AddressKind.HOST_SUBNET,
            country=city.country,
            location=city.location,
            owner_node=as_node,
            owner_home_country=node.home_country,
            city=city,
        )

    @property
    def topology(self) -> Topology:
        return self._topology
