"""Synthetic geolocation databases with seeded error models.

City-level geolocation is known to be unreliable (the paper cites three
studies before refusing to trust it, Appendix B).  Each
:class:`GeoDatabase` wraps the ground-truth oracle with three error
processes, all deterministic per (database, address):

- **home-country bias** — infrastructure of international providers is
  reported in the provider's registration country rather than where it is
  deployed (one of the paper's two causes of countries seeing multiple
  regional IPs, §4.3);
- **random country error** — plain wrong entries;
- **coordinate fuzz** — city-level answers displaced by tens to hundreds
  of km, which is why the Appendix-B pipeline cross-checks coordinates
  against the speed-of-light constraint.

Three default instances stand in for MaxMind, ipinfo, and EdgeScape, with
*independent* errors so the "all databases agree on the country" consensus
rule of the country-level IPGeo technique has real content.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass

from repro.geo.coords import GeoPoint
from repro.geo.countries import iter_countries
from repro.geoloc.oracle import AddressAttribution, AddressKind, GeoOracle
from repro.netaddr.ipv4 import IPv4Address, IPv4Prefix

_ALL_COUNTRIES = tuple(iter_countries())


@dataclass(frozen=True)
class GeoRecord:
    """One database answer."""

    country: str
    location: GeoPoint

    def distance_km(self, point: GeoPoint) -> float:
        return self.location.distance_km(point)


@dataclass(frozen=True)
class GeoDbParams:
    """Error-model knobs of one database."""

    #: Probability an address of an AS deployed outside its home country is
    #: reported in the home country.
    home_country_bias: float = 0.5
    #: Probability of a plain wrong country for any address.
    country_error: float = 0.03
    #: Probability a (country-correct) answer is displaced by a large step.
    coord_error: float = 0.15
    #: Coordinate displacement range in km (small, large).
    coord_fuzz_km: tuple[float, float] = (15.0, 600.0)


class GeoDatabase:
    """One error-prone geolocation database."""

    def __init__(self, name: str, oracle: GeoOracle, params: GeoDbParams, seed: int = 0):
        self.name = name
        self.params = params
        self._oracle = oracle
        self._seed = seed

    # ------------------------------------------------------------------
    def _hash01(self, *parts: object) -> float:
        digest = hashlib.sha256(
            "|".join(str(p) for p in (self.name, self._seed, *parts)).encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def _displace(self, addr: IPv4Address, point: GeoPoint, km: float) -> GeoPoint:
        bearing = self._hash01("bearing", addr) * 2.0 * math.pi
        dlat = (km / 111.0) * math.cos(bearing)
        cos_lat = max(0.1, math.cos(math.radians(point.lat)))
        dlon = (km / (111.0 * cos_lat)) * math.sin(bearing)
        lat = max(-89.9, min(89.9, point.lat + dlat))
        lon = ((point.lon + dlon + 180.0) % 360.0) - 180.0
        return GeoPoint(lat, lon)

    def _wrong_country(self, addr: IPv4Address) -> str:
        idx = int(self._hash01("wrong-country", addr) * len(_ALL_COUNTRIES))
        return _ALL_COUNTRIES[min(idx, len(_ALL_COUNTRIES) - 1)]

    # ------------------------------------------------------------------
    def lookup(self, addr: IPv4Address) -> GeoRecord | None:
        """The database's answer for an address (None for unknown space)."""
        truth = self._oracle.attribute(addr)
        if truth is None:
            return None
        return self._record_for(addr, truth)

    def lookup_subnet(self, subnet: IPv4Prefix) -> GeoRecord | None:
        """The database's answer for a client /24 (used by ECS mapping)."""
        truth = self._oracle.attribute_subnet(subnet)
        if truth is None:
            return None
        return self._record_for(subnet.network_address, truth)

    def _record_for(self, addr: IPv4Address, truth: AddressAttribution) -> GeoRecord:
        p = self.params
        # Plain wrong country, independent of everything else.
        if self._hash01("country-err", addr) < p.country_error:
            country = self._wrong_country(addr)
            # A wrong-country record points far from the truth.
            location = self._displace(addr, truth.location, 3000.0)
            return GeoRecord(country=country, location=location)
        # Home-country bias for infrastructure deployed abroad.  Probe and
        # host addresses of international providers are affected too —
        # that is precisely the paper's transit-provider observation.
        if (
            truth.owner_home_country is not None
            and truth.owner_home_country != truth.country
            and truth.kind
            in (AddressKind.ROUTER, AddressKind.PROBE, AddressKind.HOST_SUBNET)
            and self._hash01("home-bias", addr) < p.home_country_bias
        ):
            return GeoRecord(
                country=truth.owner_home_country,
                location=self._displace(addr, truth.location, 2000.0),
            )
        if self._hash01("coord-err", addr) < p.coord_error:
            lo, hi = p.coord_fuzz_km
            km = lo + self._hash01("coord-km", addr) * (hi - lo)
        else:
            km = self.params.coord_fuzz_km[0] * self._hash01("coord-km", addr)
        return GeoRecord(
            country=truth.country,
            location=self._displace(addr, truth.location, km),
        )


def default_databases(oracle: GeoOracle, seed: int = 0) -> list[GeoDatabase]:
    """The three databases the paper consults (MaxMind, ipinfo, EdgeScape).

    Error rates differ per database so their consensus carries signal.
    """
    return [
        GeoDatabase(
            "maxmind-like",
            oracle,
            GeoDbParams(home_country_bias=0.45, country_error=0.02, coord_error=0.12),
            seed=seed,
        ),
        GeoDatabase(
            "ipinfo-like",
            oracle,
            GeoDbParams(home_country_bias=0.55, country_error=0.03, coord_error=0.18),
            seed=seed + 1,
        ),
        GeoDatabase(
            "edgescape-like",
            oracle,
            GeoDbParams(home_country_bias=0.40, country_error=0.04, coord_error=0.15),
            seed=seed + 2,
        ),
    ]
