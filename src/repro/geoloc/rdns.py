"""Reverse-DNS name synthesis and geo-hint parsing.

Operators name router interfaces with embedded location codes; the paper's
site-mapping pipeline reads them first (Appendix B: "operator-defined
codes, IATA/ICAO codes, or CLLI code").  The simulator reproduces the
ecosystem's messiness:

- each AS consistently uses one naming *style*: IATA codes (parsable),
  CLLI-like six-letter codes (parsable), or opaque operator codes
  (unparsable — the pipeline must fall through to RTT-range);
- a per-kind fraction of interfaces simply has no PTR record;
- some ASes hang their routers under a country-code TLD, enabling the
  pipeline's ccTLD fallback.

Name shape: ``ae-<n>.cr<m>.<geohint><k>.as<asn>.<tld>`` for AS
infrastructure and ``as<asn>.ix-<iata>.<tld>`` on IXP peering LANs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.geo.atlas import City, WorldAtlas
from repro.geoloc.oracle import AddressKind, GeoOracle
from repro.netaddr.ipv4 import IPv4Address

#: Consonant pool for opaque operator codes (never matches IATA or CLLI).
_OPAQUE_LETTERS = "bcdfghjklmnpqrstvwxz"


def clli_code(city: City) -> str:
    """A CLLI-like six-letter code: four city letters + two country letters.

    Example: Amsterdam, NL → ``amstnl``.
    """
    compact = "".join(ch for ch in city.name.lower() if ch.isalpha())
    return (compact + "xxxx")[:4] + city.country.lower()


@dataclass(frozen=True)
class RdnsParams:
    """Coverage and style mix of the rDNS ecosystem."""

    #: PTR coverage per address kind.
    router_coverage: float = 0.80
    ixp_lan_coverage: float = 0.55
    #: Style mix across ASes (cumulative: iata, then clli, rest opaque).
    iata_style_fraction: float = 0.62
    clli_style_fraction: float = 0.16
    #: Probability an AS's router domain sits under its country's ccTLD.
    cctld_fraction: float = 0.30


class ReverseDNS:
    """Deterministic PTR records for simulated infrastructure addresses."""

    def __init__(self, oracle: GeoOracle, params: RdnsParams | None = None, seed: int = 0):
        self._oracle = oracle
        self.params = params or RdnsParams()
        self._seed = seed

    def _hash01(self, *parts: object) -> float:
        digest = hashlib.sha256(
            "|".join(str(p) for p in ("rdns", self._seed, *parts)).encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def _style_of(self, node_id: int) -> str:
        # CDN operators name site routers with airport codes (the paper's
        # example: ae-65.core1.amb.edgecastcdn.net), so anycast site nodes
        # always use the parsable IATA style.
        from repro.topology.asys import Tier

        if self._oracle.topology.node(node_id).tier is Tier.CDN:
            return "iata"
        u = self._hash01("style", node_id)
        if u < self.params.iata_style_fraction:
            return "iata"
        if u < self.params.iata_style_fraction + self.params.clli_style_fraction:
            return "clli"
        return "opaque"

    def _tld_of(self, node_id: int, home_country: str | None) -> str:
        if home_country and self._hash01("tld", node_id) < self.params.cctld_fraction:
            return home_country.lower()
        return "net"

    def _opaque_token(self, node_id: int, city: City) -> str:
        token = []
        for i in range(4):
            u = self._hash01("opaque", node_id, city.iata, i)
            token.append(_OPAQUE_LETTERS[int(u * len(_OPAQUE_LETTERS)) % len(_OPAQUE_LETTERS)])
        return "".join(token)

    # ------------------------------------------------------------------
    def name_of(self, addr: IPv4Address) -> str | None:
        """The PTR record for an interface address, or None."""
        truth = self._oracle.attribute(addr)
        if truth is None or truth.city is None:
            return None
        node = self._oracle.topology.node(truth.owner_node)
        if truth.kind is AddressKind.IXP_LAN:
            if self._hash01("covered", addr) >= self.params.ixp_lan_coverage:
                return None
            ixp = self._oracle.topology.ixp(truth.ixp_id)
            return f"as{node.asn}.ix-{ixp.city.iata.lower()}.net"
        if truth.kind is not AddressKind.ROUTER:
            return None
        if self._hash01("covered", addr) >= self.params.router_coverage:
            return None
        style = self._style_of(node.node_id)
        if style == "iata":
            hint = truth.city.iata.lower()
        elif style == "clli":
            hint = clli_code(truth.city)
        else:
            hint = self._opaque_token(node.node_id, truth.city)
        unit = 1 + int(self._hash01("unit", addr) * 64)
        router = 1 + int(self._hash01("router", addr) * 4)
        pop_idx = 1 + int(self._hash01("pop", addr) * 3)
        tld = self._tld_of(node.node_id, node.home_country)
        return f"ae-{unit}.cr{router}.{hint}{pop_idx}.as{node.asn}.{tld}"


def _candidate_tokens(name: str) -> list[str]:
    tokens: list[str] = []
    for label in name.lower().split("."):
        for part in label.split("-"):
            stripped = part.rstrip("0123456789")
            if stripped:
                tokens.append(stripped)
    return tokens


def parse_geo_hint(name: str, atlas: WorldAtlas) -> City | None:
    """Extract a city-level geo-hint from an rDNS name.

    Tries IATA codes first, then CLLI-like codes; returns None when no
    token matches (opaque operator codes and hintless names).
    """
    tokens = _candidate_tokens(name)
    clli_index: dict[str, City] | None = None
    for token in tokens:
        if len(token) == 3 and token.upper() in atlas:
            return atlas.get(token.upper())
    for token in tokens:
        if len(token) == 6:
            if clli_index is None:
                clli_index = {clli_code(c): c for c in atlas}
            city = clli_index.get(token)
            if city is not None:
                return city
    return None


def parse_cctld(name: str) -> str | None:
    """The country implied by a name's ccTLD, or None for gTLDs."""
    tld = name.rsplit(".", 1)[-1].lower()
    if len(tld) != 2:
        return None
    from repro.geo.countries import is_country

    code = tld.upper()
    return code if is_country(code) else None
