"""IP geolocation: ground truth, error-prone databases, and rDNS hints.

Three layers, mirroring how the paper's Appendix-B pipeline sees the world:

- :mod:`repro.geoloc.oracle` — the simulator's **ground truth**: every
  address (router interface, IXP LAN, probe host, service prefix) maps to
  its true location and owner.  Analysis code never touches this directly;
  it goes through the next two layers, which add realistic error.
- :mod:`repro.geoloc.database` — synthetic geolocation **databases**
  (MaxMind / ipinfo / EdgeScape stand-ins) with independent, seeded error
  models: country errors, home-country bias for international providers
  (§4.3's "probes whose IPs belong to international transit providers are
  often geolocated to their home countries"), and coordinate fuzz.
- :mod:`repro.geoloc.rdns` — **reverse-DNS** name synthesis embedding
  IATA-style geo-hints with configurable coverage, plus the hint parser
  the site-mapping pipeline runs first.
"""

from repro.geoloc.database import GeoDatabase, GeoDbParams, GeoRecord, default_databases
from repro.geoloc.oracle import AddressAttribution, AddressKind, GeoOracle
from repro.geoloc.rdns import ReverseDNS, parse_cctld, parse_geo_hint

__all__ = [
    "AddressAttribution",
    "AddressKind",
    "GeoDatabase",
    "GeoDbParams",
    "GeoOracle",
    "GeoRecord",
    "ReverseDNS",
    "default_databases",
    "parse_cctld",
    "parse_geo_hint",
]
