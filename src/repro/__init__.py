"""Reproduction of "Regional IP Anycast: Deployments, Performance, and
Potentials" (SIGCOMM 2023) on a simulated Internet.

The library is organised bottom-up; see README.md for the architecture
overview and DESIGN.md for the system inventory.  The most common entry
points:

- :func:`repro.topology.InternetBuilder.build` — generate a seeded
  synthetic Internet;
- :class:`repro.anycast.AnycastNetwork` — deploy anycast sites and build
  announcements;
- :class:`repro.measurement.MeasurementEngine` — ping / traceroute from
  RIPE-Atlas-like probes;
- :mod:`repro.experiments` — one harness per paper table and figure
  (``python -m repro.experiments.runner`` regenerates them all);
- ``python -m repro`` — the command-line interface.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
