"""Probe grouping by <city, AS> and group-median aggregation (§3.1).

RIPE Atlas probes cluster in well-connected networks; presenting raw
per-probe statistics would over-weight those networks.  The paper instead
groups probes by ``<city, AS>`` pair and uses each group's *median* value,
"to represent the performance of a client residing in the same city and
AS".  Every CDF, percentage, and percentile downstream consumes these
group medians.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.geo.areas import Area
from repro.measurement.probes import Probe


@dataclass(frozen=True)
class ProbeGroup:
    """All usable probes sharing a ``<city, AS>`` pair."""

    city_code: str
    as_node: int
    probes: tuple[Probe, ...]

    def __post_init__(self) -> None:
        if not self.probes:
            raise ValueError("a probe group cannot be empty")

    @property
    def key(self) -> tuple[str, int]:
        return (self.city_code, self.as_node)

    @property
    def area(self) -> Area:
        return self.probes[0].area

    @property
    def country(self) -> str:
        return self.probes[0].country

    def median(self, values_by_probe: dict[int, float]) -> float | None:
        """Median of a per-probe metric over the group's probes.

        Probes missing from ``values_by_probe`` (e.g. unreachable pings)
        are skipped; returns None when no probe has a value.
        """
        values = [
            values_by_probe[p.probe_id]
            for p in self.probes
            if p.probe_id in values_by_probe
        ]
        if not values:
            return None
        return statistics.median(values)

    def majority(self, values_by_probe: dict[int, object]) -> object | None:
        """The most common categorical value across the group's probes.

        Ties break toward the smallest repr for determinism.  Used for
        group-level catchment sites and regional-IP assignments.
        """
        counts: dict[object, int] = {}
        for p in self.probes:
            if p.probe_id in values_by_probe:
                v = values_by_probe[p.probe_id]
                counts[v] = counts.get(v, 0) + 1
        if not counts:
            return None
        return max(counts.items(), key=lambda kv: (kv[1], -_stable_rank(kv[0])))[0]


def _stable_rank(value: object) -> float:
    """A deterministic orderable proxy for arbitrary categorical values.

    Uses a digest rather than ``hash()`` because string hashing is
    randomised per process and group majorities must be reproducible.
    """
    import hashlib

    digest = hashlib.sha256(str(value).encode()).digest()
    return float(int.from_bytes(digest[:4], "big"))


def group_probes(probes: list[Probe]) -> list[ProbeGroup]:
    """Group usable probes by ``<city, AS>``, discarding filtered probes."""
    buckets: dict[tuple[str, int], list[Probe]] = {}
    for probe in probes:
        if not probe.usable:
            continue
        buckets.setdefault((probe.city_code, probe.as_node), []).append(probe)
    groups = [
        ProbeGroup(city_code=city, as_node=asn, probes=tuple(members))
        for (city, asn), members in buckets.items()
    ]
    groups.sort(key=lambda g: g.key)
    return groups
