"""A RIPE-Atlas-like measurement platform over the simulated Internet.

The paper's estimator pipeline (§3.1) is reproduced end to end:

- a globally distributed **probe population** with the paper's per-area
  densities, including probes with unreliable user-reported geocodes and
  probes without stability tags (both filtered before analysis);
- a **measurement engine** able to run ping, traceroute, and DNS
  resolution from any probe, with deterministic last-mile latency and
  per-(probe, target) jitter;
- **probe grouping** by ``<city, AS>`` with group-median aggregation, the
  unit every CDF, percentage, and percentile in the paper is computed on.
"""

from repro.measurement.engine import (
    MeasurementEngine,
    PingResult,
    ServiceRegistry,
    TracerouteResult,
)
from repro.measurement.grouping import ProbeGroup, group_probes
from repro.measurement.probes import Probe, ProbePopulation, ProbeParams

__all__ = [
    "MeasurementEngine",
    "PingResult",
    "Probe",
    "ProbeGroup",
    "ProbePopulation",
    "ProbeParams",
    "ServiceRegistry",
    "TracerouteResult",
    "group_probes",
]
