"""Probe model and probe population generation.

Probes mirror the properties of RIPE Atlas probes the paper relies on:

- a **true location** (the probe's built-in geocode) and a **reported
  location** which may be wrong for a fraction of probes — the paper
  discards probes "with unreliable geocodes" (§3.1), and we generate such
  probes so the filter has something to do;
- a **stability tag** (``system-ipv4-stable-1d``); untagged probes are
  likewise discarded;
- a **city code**: the IATA code of the closest atlas city within the
  probe's country (§3.1's closest-airport rule);
- an IPv4 address inside its host AS, so DNS ECS and geolocation
  databases can operate on real client subnets.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.geo.areas import Area, area_of_country
from repro.geo.atlas import WorldAtlas
from repro.geo.coords import GeoPoint
from repro.netaddr.ipv4 import IPv4Address, IPv4Prefix
from repro.topology.asys import AutonomousSystem, Tier
from repro.topology.graph import Topology

#: Per-area probe weights, matching the paper's probe counts
#: (EMEA 6917, NA 1716, APAC 950, LatAm 177 of 9760 retained probes).
_AREA_WEIGHTS: tuple[tuple[Area, float], ...] = (
    (Area.EMEA, 0.709),
    (Area.NA, 0.176),
    (Area.APAC, 0.097),
    (Area.LATAM, 0.018),
)


@dataclass(frozen=True)
class Probe:
    """One measurement vantage point."""

    probe_id: int
    addr: IPv4Address
    as_node: int
    country: str
    #: Built-in geocode — ground truth for distance computations.
    location: GeoPoint
    #: User-reported geocode; may disagree with ``location``.
    reported_location: GeoPoint
    #: IATA code of the closest same-country atlas city.
    city_code: str
    #: Whether the probe carries a stability tag (e.g. system-ipv4-stable-1d).
    stable: bool
    #: Whether the reported geocode matches the built-in one.
    geocode_reliable: bool
    #: Access-network latency added to every measurement (RTT, ms).
    last_mile_ms: float

    @property
    def area(self) -> Area:
        return area_of_country(self.country)

    @property
    def client_subnet(self) -> IPv4Prefix:
        """The /24 announced via EDNS Client Subnet for this probe."""
        return IPv4Prefix(self.addr.value & ~0xFF, 24)

    @property
    def usable(self) -> bool:
        """Whether the probe survives the paper's §3.1 filters."""
        return self.stable and self.geocode_reliable


@dataclass
class ProbeParams:
    """Knobs of the probe population generator."""

    seed: int = 7
    num_probes: int = 3000
    #: Fraction of probes with an unreliable user-reported geocode.
    unreliable_geocode_fraction: float = 0.06
    #: Fraction of probes without a stability tag.
    unstable_fraction: float = 0.07
    #: Maximum jitter of a probe around its host AS's metro, in km.
    location_jitter_km: float = 60.0
    #: Last-mile RTT range, in ms.
    last_mile_ms: tuple[float, float] = (1.0, 8.0)
    area_weights: tuple[tuple[Area, float], ...] = _AREA_WEIGHTS


class ProbePopulation:
    """All probes generated for one topology.

    Probes are hosted in stub ASes; each stub AS receives a /22 host
    prefix from the shared host pool and numbers its probes out of it, so
    probe addresses map deterministically back to their AS and metro —
    which is what geolocation databases (and their error models) consume.
    """

    def __init__(self, topology: Topology, params: ProbeParams | None = None):
        self.params = params or ProbeParams()
        self._topology = topology
        self._atlas: WorldAtlas = topology.atlas  # type: ignore[attr-defined]
        self._plan = topology.address_plan  # type: ignore[attr-defined]
        self._probes: list[Probe] = []
        self._by_addr: dict[IPv4Address, Probe] = {}
        self._host_prefixes: dict[int, IPv4Prefix] = {}
        self._generate()

    # ------------------------------------------------------------------
    def _generate(self) -> None:
        rng = random.Random(self.params.seed)
        stubs_by_area: dict[Area, list[AutonomousSystem]] = {}
        for node in self._topology.nodes():
            if node.tier is Tier.STUB:
                stubs_by_area.setdefault(node.pops[0].city.area, []).append(node)
        for area_list in stubs_by_area.values():
            area_list.sort(key=lambda n: n.node_id)
        next_host: dict[int, int] = {}
        areas = [a for a, _ in self.params.area_weights]
        weights = [w for _, w in self.params.area_weights]
        for probe_id in range(self.params.num_probes):
            area = rng.choices(areas, weights=weights, k=1)[0]
            candidates = stubs_by_area.get(area)
            if not candidates:
                raise ValueError(f"topology has no stub ASes in {area}")
            host_as = rng.choice(candidates)
            city = host_as.pops[0].city
            location = _jitter(rng, city.location, self.params.location_jitter_km)
            reliable = rng.random() >= self.params.unreliable_geocode_fraction
            if reliable:
                reported = location
            else:
                # Unreliable geocodes are typically off by hundreds of km
                # (default coordinates, stale entries, wrong city).
                reported = _jitter(rng, city.location, 2500.0, min_km=400.0)
            stable = rng.random() >= self.params.unstable_fraction
            prefix = self._host_prefix_for(host_as)
            offset = next_host.get(host_as.node_id, 1)
            if offset >= prefix.num_addresses - 1:
                raise RuntimeError(f"host prefix of AS {host_as.asn} exhausted")
            next_host[host_as.node_id] = offset + 1
            addr = prefix.address(offset)
            nearest = self._atlas.nearest(location, country=city.country)
            lo, hi = self.params.last_mile_ms
            probe = Probe(
                probe_id=probe_id,
                addr=addr,
                as_node=host_as.node_id,
                country=city.country,
                location=location,
                reported_location=reported,
                city_code=nearest.iata,
                stable=stable,
                geocode_reliable=reliable,
                last_mile_ms=rng.uniform(lo, hi),
            )
            self._probes.append(probe)
            self._by_addr[addr] = probe

    def _host_prefix_for(self, host_as: AutonomousSystem) -> IPv4Prefix:
        prefix = self._host_prefixes.get(host_as.node_id)
        if prefix is None:
            prefix = self._plan.hosts.allocate(22)
            self._host_prefixes[host_as.node_id] = prefix
        return prefix

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._probes)

    def __iter__(self):
        return iter(self._probes)

    def all_probes(self) -> list[Probe]:
        return list(self._probes)

    def usable_probes(self) -> list[Probe]:
        """Probes retained after the paper's §3.1 filtering step."""
        return [p for p in self._probes if p.usable]

    def probe_by_addr(self, addr: IPv4Address) -> Probe | None:
        return self._by_addr.get(addr)

    def host_prefix_of(self, as_node: int) -> IPv4Prefix | None:
        """The host prefix assigned to a stub AS (None if it has no probes)."""
        return self._host_prefixes.get(as_node)

    def host_prefixes(self) -> dict[int, IPv4Prefix]:
        """All host prefixes, keyed by hosting AS node id."""
        return dict(self._host_prefixes)

    def reserve_resolver_addr(self, as_node: int) -> IPv4Address:
        """A deterministic address for the AS's ISP resolver.

        The last usable address of the AS's host prefix, far from the
        probe block, so ISP resolvers and probes never collide.
        """
        prefix = self._host_prefixes.get(as_node)
        if prefix is None:
            prefix = self._plan.hosts.allocate(22)
            self._host_prefixes[as_node] = prefix
        return prefix.address(prefix.num_addresses - 2)

    def in_area(self, area: Area) -> list[Probe]:
        return [p for p in self._probes if p.usable and p.area is area]


def _jitter(
    rng: random.Random, center: GeoPoint, max_km: float, min_km: float = 0.0
) -> GeoPoint:
    """A point displaced from ``center`` by [min_km, max_km] kilometres."""
    if max_km <= 0:
        return center
    km = rng.uniform(min_km, max_km)
    bearing = rng.uniform(0, 2 * math.pi)
    dlat = (km / 111.0) * math.cos(bearing)
    cos_lat = max(0.1, math.cos(math.radians(center.lat)))
    dlon = (km / (111.0 * cos_lat)) * math.sin(bearing)
    lat = max(-89.9, min(89.9, center.lat + dlat))
    lon = ((center.lon + dlon + 180.0) % 360.0) - 180.0
    return GeoPoint(lat, lon)
