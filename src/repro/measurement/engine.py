"""Ping / traceroute execution from probes over the routed topology.

The engine binds together the routing layer and the probe population:

- a :class:`ServiceRegistry` records which announcement owns each service
  address, the way the real Internet's routing tables do;
- :meth:`MeasurementEngine.ping` resolves the probe's AS, looks up its
  selected route toward the target's announcement, realises the route
  geographically, and reports an RTT with deterministic per-(probe,
  target) jitter — re-measuring the same target from the same probe gives
  the same value, while two prefixes served from the same site via the
  same path differ slightly (the §5.3 "same path, different RTT" noise);
- :meth:`MeasurementEngine.traceroute` additionally reports hops, with a
  deterministic fraction of silent routers (the paper's invalid-p-hop
  traces, filtered in §5.3).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.measurement.probes import Probe
from repro.netaddr.ipv4 import IPv4Address
from repro.routing.engine import RoutingEngine, RoutingTable
from repro.routing.forwarding import ForwardingPath, Hop, trace_forwarding_path
from repro.routing.route import Announcement
from repro.topology.graph import Topology


@dataclass(frozen=True)
class PingResult:
    """Outcome of one ping measurement."""

    probe_id: int
    target: IPv4Address
    #: None when the probe's AS holds no route to the target.
    rtt_ms: float | None
    #: Origin site node id of the route used (the catchment), or None.
    catchment: int | None

    @property
    def reachable(self) -> bool:
        return self.rtt_ms is not None


@dataclass(frozen=True)
class TracerouteHop:
    """One line of traceroute output."""

    ttl: int
    #: None when the router did not respond ("* * *").
    addr: IPv4Address | None
    rtt_ms: float | None


@dataclass(frozen=True)
class TracerouteResult:
    """Outcome of one traceroute measurement."""

    probe_id: int
    target: IPv4Address
    hops: tuple[TracerouteHop, ...]
    reached: bool
    #: The forwarding path behind the measurement (simulator ground truth,
    #: not visible to analysis code that plays by the paper's rules).
    path: ForwardingPath | None

    @property
    def penultimate_hop(self) -> TracerouteHop | None:
        """The hop before the destination, or None if it did not respond.

        Traces whose p-hop is missing are the "no valid p-hop" traces the
        paper filters out (§5.3).
        """
        if not self.reached or len(self.hops) < 2:
            return None
        hop = self.hops[-2]
        return hop if hop.addr is not None else None


class ServiceRegistry:
    """Maps service addresses to the announcement that serves them.

    Lookups use longest-prefix match over the registered prefixes (a
    binary trie keyed on address bits), exactly like a FIB: any address
    inside a registered prefix resolves to its announcement, and more
    specific prefixes shadow less specific ones.
    """

    def __init__(self) -> None:
        self._by_addr: dict[IPv4Address, Announcement] = {}
        # Binary trie node: [zero_child, one_child, announcement|None].
        self._trie: list = [None, None, None]
        self._count = 0

    def register(self, announcement: Announcement) -> None:
        """Register an announcement under its prefix."""
        addr = announcement.prefix.address(1)
        existing = self._by_addr.get(addr)
        if existing is not None and existing != announcement:
            raise ValueError(f"service address {addr} already registered")
        if existing is None:
            self._by_addr[addr] = announcement
            self._trie_insert(announcement)
            self._count += 1

    def _trie_insert(self, announcement: Announcement) -> None:
        prefix = announcement.prefix
        node = self._trie
        for i in range(prefix.length):
            bit = (prefix.network >> (31 - i)) & 1
            if node[bit] is None:
                node[bit] = [None, None, None]
            node = node[bit]
        if node[2] is not None and node[2] != announcement:
            raise ValueError(f"prefix {prefix} already registered")
        node[2] = announcement

    def lookup(self, addr: IPv4Address) -> Announcement | None:
        """Longest-prefix match for an address."""
        node = self._trie
        best: Announcement | None = node[2]
        value = addr.value
        for i in range(32):
            bit = (value >> (31 - i)) & 1
            node = node[bit]
            if node is None:
                break
            if node[2] is not None:
                best = node[2]
        return best

    def announcements(self) -> list[Announcement]:
        return list(self._by_addr.values())

    def __len__(self) -> int:
        return self._count


class MeasurementEngine:
    """Executes measurements from probes."""

    def __init__(
        self,
        topology: Topology,
        registry: ServiceRegistry,
        seed: int = 0,
        jitter_fraction: float = 0.04,
        hop_silent_fraction: float = 0.02,
        hop_silence_seed: int = 0,
    ):
        self._topology = topology
        self._registry = registry
        self._routing = RoutingEngine(topology)
        self._seed = seed
        self._jitter_fraction = jitter_fraction
        self._hop_silent_fraction = hop_silent_fraction
        # Router unresponsiveness is a property of the *router*, not of a
        # measurement campaign: it uses its own seed so two engines with
        # different campaign seeds see the same silent routers.
        self._hop_silence_seed = hop_silence_seed

    @property
    def routing(self) -> RoutingEngine:
        return self._routing

    @property
    def registry(self) -> ServiceRegistry:
        return self._registry

    # ------------------------------------------------------------------
    def table_for(self, addr: IPv4Address) -> RoutingTable | None:
        announcement = self._registry.lookup(addr)
        if announcement is None:
            return None
        return self._routing.compute(announcement)

    def forwarding_path(self, probe: Probe, addr: IPv4Address) -> ForwardingPath | None:
        """The geographic path a probe's traffic takes toward an address."""
        table = self.table_for(addr)
        if table is None:
            return None
        return trace_forwarding_path(
            self._topology,
            table,
            probe.as_node,
            probe.location,
            last_mile_ms=probe.last_mile_ms,
        )

    def ping(self, probe: Probe, addr: IPv4Address, salt: object = None) -> PingResult:
        """One ping from a probe to a service address.

        ``salt`` differentiates otherwise identical measurement campaigns
        (e.g. two hostnames resolving to the same addresses, Appendix C):
        the same (probe, address, salt) always measures the same RTT.
        """
        path = self.forwarding_path(probe, addr)
        if path is None:
            return PingResult(probe_id=probe.probe_id, target=addr,
                              rtt_ms=None, catchment=None)
        rtt = path.rtt_ms * (1.0 + self._jitter(probe.probe_id, addr, salt))
        return PingResult(
            probe_id=probe.probe_id,
            target=addr,
            rtt_ms=rtt,
            catchment=path.origin,
        )

    def traceroute(self, probe: Probe, addr: IPv4Address) -> TracerouteResult:
        """One traceroute from a probe to a service address."""
        path = self.forwarding_path(probe, addr)
        if path is None:
            return TracerouteResult(
                probe_id=probe.probe_id, target=addr, hops=(), reached=False, path=None
            )
        jitter = 1.0 + self._jitter(probe.probe_id, addr)
        hops: list[TracerouteHop] = []
        for ttl, hop in enumerate(path.hops, start=1):
            if self._hop_silent(hop):
                hops.append(TracerouteHop(ttl=ttl, addr=None, rtt_ms=None))
            else:
                hops.append(
                    TracerouteHop(ttl=ttl, addr=hop.addr, rtt_ms=hop.rtt_ms * jitter)
                )
        hops.append(
            TracerouteHop(ttl=len(path.hops) + 1, addr=addr, rtt_ms=path.rtt_ms * jitter)
        )
        return TracerouteResult(
            probe_id=probe.probe_id,
            target=addr,
            hops=tuple(hops),
            reached=True,
            path=path,
        )

    # ------------------------------------------------------------------
    def _hash01(self, *parts: object) -> float:
        digest = hashlib.sha256(
            "|".join(str(p) for p in (self._seed, *parts)).encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def _jitter(self, probe_id: int, addr: IPv4Address, salt: object = None) -> float:
        """Symmetric multiplicative jitter in [-f, +f], deterministic."""
        u = self._hash01("jitter", probe_id, addr, salt)
        return (2.0 * u - 1.0) * self._jitter_fraction

    def _hop_silent(self, hop: Hop) -> bool:
        """Whether a router interface never answers traceroute."""
        digest = hashlib.sha256(
            f"silent|{self._hop_silence_seed}|{hop.addr}".encode()
        ).digest()
        u = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return u < self._hop_silent_fraction
