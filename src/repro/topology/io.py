"""Topology serialisation: export to / import from a JSON document.

Two use cases:

- **archiving** — persist the exact Internet an experiment ran on, so a
  result can be re-analysed later without re-deriving it from seeds;
- **interchange** — hand the AS graph to external tooling (networkx,
  graph databases, visualisers) or load a hand-authored topology for a
  scenario the generator cannot express.

The format is versioned and self-contained: nodes (with PoPs and infra
prefixes), IXPs (with memberships), and links (with every geographic
interconnect and interface address).  ``load_topology(dump_topology(t))``
reconstructs an equivalent topology: same nodes, links, adjacency,
interface registry, and routing behaviour.  Dynamic allocator state
(address-plan cursors) is *not* captured — a loaded topology is for
analysis and routing, not for deploying further networks onto.
"""

from __future__ import annotations

import json
from typing import Any

from repro.geo.atlas import WorldAtlas, load_default_atlas
from repro.netaddr.ipv4 import IPv4Address, IPv4Prefix
from repro.topology.asys import (
    AutonomousSystem,
    Interconnect,
    Link,
    LinkKind,
    PoP,
    Tier,
)
from repro.topology.graph import Topology
from repro.topology.ixp import IXP

FORMAT_VERSION = 1


def dump_topology(topology: Topology) -> dict[str, Any]:
    """Lower a topology to a JSON-serialisable document."""
    nodes = []
    for node in topology.nodes():
        nodes.append(
            {
                "node_id": node.node_id,
                "asn": node.asn,
                "name": node.name,
                "tier": node.tier.value,
                "home_country": node.home_country,
                "pops": [pop.iata for pop in node.pops],
                "infra_prefix": (
                    str(node.infra_prefix) if node.infra_prefix else None
                ),
            }
        )
    ixps = []
    for ixp in topology.ixps():
        ixps.append(
            {
                "ixp_id": ixp.ixp_id,
                "name": ixp.name,
                "city": ixp.city.iata,
                "lan_prefix": str(ixp.lan_prefix),
                "members": sorted(ixp.members),
                "route_server_members": sorted(ixp.route_server_members),
                "publishes_route_server_feed": ixp.publishes_route_server_feed,
            }
        )
    links = []
    for link in topology.links():
        links.append(
            {
                "a": link.a,
                "b": link.b,
                "kind": link.kind.value,
                "ixp_id": link.ixp_id,
                "interconnects": [
                    {
                        "city": ic.city.iata,
                        "addr_a": str(ic.addr_a),
                        "addr_b": str(ic.addr_b),
                        "extra_ms": ic.extra_ms,
                    }
                    for ic in link.interconnects
                ],
            }
        )
    return {
        "format": "repro-topology",
        "version": FORMAT_VERSION,
        "nodes": nodes,
        "ixps": ixps,
        "links": links,
    }


def load_topology(
    document: dict[str, Any], atlas: WorldAtlas | None = None
) -> Topology:
    """Reconstruct a topology from a document produced by dump_topology."""
    if document.get("format") != "repro-topology":
        raise ValueError("not a repro-topology document")
    if document.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported topology format version: {document.get('version')!r}"
        )
    atlas = atlas or load_default_atlas()
    topology = Topology()
    topology.atlas = atlas  # type: ignore[attr-defined]
    for spec in document["nodes"]:
        topology.add_node(
            AutonomousSystem(
                node_id=spec["node_id"],
                asn=spec["asn"],
                name=spec["name"],
                tier=Tier(spec["tier"]),
                home_country=spec["home_country"],
                pops=tuple(PoP(city=atlas.get(iata)) for iata in spec["pops"]),
                infra_prefix=(
                    IPv4Prefix.parse(spec["infra_prefix"])
                    if spec["infra_prefix"] else None
                ),
            )
        )
    for spec in document["ixps"]:
        ixp = IXP(
            ixp_id=spec["ixp_id"],
            name=spec["name"],
            city=atlas.get(spec["city"]),
            lan_prefix=IPv4Prefix.parse(spec["lan_prefix"]),
            members=set(spec["members"]),
            route_server_members=set(spec["route_server_members"]),
            publishes_route_server_feed=spec["publishes_route_server_feed"],
        )
        topology.add_ixp(ixp)
    for spec in document["links"]:
        topology.add_link(
            Link(
                a=spec["a"],
                b=spec["b"],
                kind=LinkKind(spec["kind"]),
                ixp_id=spec["ixp_id"],
                interconnects=tuple(
                    Interconnect(
                        city=atlas.get(ic["city"]),
                        addr_a=IPv4Address.parse(ic["addr_a"]),
                        addr_b=IPv4Address.parse(ic["addr_b"]),
                        extra_ms=ic["extra_ms"],
                    )
                    for ic in spec["interconnects"]
                ),
            )
        )
    return topology


def save_topology(topology: Topology, path: str) -> None:
    """Write a topology to a JSON file."""
    with open(path, "w") as f:
        json.dump(dump_topology(topology), f, indent=1)


def read_topology(path: str, atlas: WorldAtlas | None = None) -> Topology:
    """Read a topology from a JSON file."""
    with open(path) as f:
        return load_topology(json.load(f), atlas=atlas)


def to_networkx(topology: Topology):
    """The AS graph as a networkx MultiGraph (nodes keyed by node id).

    Node attributes: asn, name, tier, home_country, pops.  Edge
    attributes: kind, ixp_id, interconnect cities.  Requires networkx.
    """
    import networkx as nx

    graph = nx.MultiGraph()
    for node in topology.nodes():
        graph.add_node(
            node.node_id,
            asn=node.asn,
            name=node.name,
            tier=node.tier.value,
            home_country=node.home_country,
            pops=[pop.iata for pop in node.pops],
        )
    for link in topology.links():
        graph.add_edge(
            link.a,
            link.b,
            kind=link.kind.value,
            ixp_id=link.ixp_id,
            cities=[ic.city.iata for ic in link.interconnects],
        )
    return graph
