"""Autonomous systems, PoPs, links, and interconnects.

Terminology used throughout the simulator:

- An **AS** is a routing-graph node with an ASN, a tier, a *home country*
  (the country its address space is registered in — geolocation databases
  sometimes return the home country for infrastructure deployed abroad,
  one of the paper's observed error sources, §4.3), and a set of PoPs.
- A **link** is a business adjacency between two nodes.  Transit links are
  directed (customer pays provider); peering links are symmetric and come
  in three flavours: private interconnect, public IXP peering, and IXP
  route-server peering.  The flavour feeds the BGP decision process
  (§5.4 — "routers generally prefer public peers over route server peers").
- An **interconnect** is one physical location where the link exists, with
  one interface address per side.  A link may interconnect in several
  cities (tier-1 meshes do); the forwarding model picks interconnects
  greedily, approximating hot-potato routing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geo.atlas import City
from repro.netaddr.ipv4 import IPv4Address, IPv4Prefix


class Tier(enum.Enum):
    """Coarse position of an AS in the transit hierarchy."""

    TIER1 = "tier1"  # transit-free clique member
    TRANSIT = "transit"  # regional / national transit provider
    STUB = "stub"  # eyeball or enterprise edge network
    CDN = "cdn"  # content/anycast network (origin-only site nodes)
    IXP = "ixp"  # IXP route-server "AS" (never transits traffic)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class LinkKind(enum.Enum):
    """Business flavour of an adjacency."""

    TRANSIT = "transit"  # a (customer) pays b (provider)
    PEER_PRIVATE = "peer-private"  # settlement-free PNI
    PEER_PUBLIC = "peer-public"  # bilateral session over an IXP fabric
    PEER_ROUTE_SERVER = "peer-rs"  # multilateral session via IXP route server

    @property
    def is_peering(self) -> bool:
        return self is not LinkKind.TRANSIT

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PoP:
    """A point of presence of an AS in one city."""

    city: City

    @property
    def iata(self) -> str:
        return self.city.iata


@dataclass
class AutonomousSystem:
    """A routing-graph node.

    ``node_id`` uniquely identifies the node in the topology graph.  For
    ordinary ASes it equals the ASN; anycast *site* nodes share their CDN's
    ASN but get distinct node ids (a CDN announces from many sites under
    one origin AS, and sites do not transit traffic for each other).
    """

    node_id: int
    asn: int
    name: str
    tier: Tier
    home_country: str
    pops: tuple[PoP, ...]
    #: Address block the AS numbers its router interfaces from.
    infra_prefix: IPv4Prefix | None = None

    def __post_init__(self) -> None:
        if not self.pops:
            raise ValueError(f"AS {self.asn} ({self.name}) must have at least one PoP")
        seen = set()
        for pop in self.pops:
            if pop.iata in seen:
                raise ValueError(f"AS {self.asn} has duplicate PoP in {pop.iata}")
            seen.add(pop.iata)

    @property
    def is_site(self) -> bool:
        """True for CDN/testbed anycast site nodes."""
        return self.node_id != self.asn

    @property
    def cities(self) -> tuple[City, ...]:
        return tuple(pop.city for pop in self.pops)

    def has_pop_in(self, iata: str) -> bool:
        return any(pop.iata == iata for pop in self.pops)

    def nearest_pop(self, city: City) -> PoP:
        """The PoP geographically nearest to ``city``."""
        return min(self.pops, key=lambda p: p.city.location.distance_km(city.location))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"AS{self.asn}({self.name})"


@dataclass(frozen=True)
class Interconnect:
    """One physical location where a link exists.

    ``addr_a`` / ``addr_b`` are the interface addresses of the link's ``a``
    and ``b`` side at this location; traceroute hops report these
    addresses, and the Appendix-B pipeline geolocates them.
    """

    city: City
    addr_a: IPv4Address
    addr_b: IPv4Address
    #: Extra queueing/processing latency at this interconnect, in ms
    #: (sampled once at build time; deterministic thereafter).
    extra_ms: float = 0.0


@dataclass
class Link:
    """An adjacency between two topology nodes.

    For :attr:`LinkKind.TRANSIT` links, ``a`` is the **customer** and ``b``
    is the **provider**.  For peering links the order of ``a`` and ``b``
    carries no meaning.  ``ixp_id`` is set for public/route-server peering
    and names the IXP whose fabric carries the session.
    """

    a: int
    b: int
    kind: LinkKind
    interconnects: tuple[Interconnect, ...]
    ixp_id: int | None = None

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"self-link on node {self.a}")
        if not self.interconnects:
            raise ValueError(f"link {self.a}<->{self.b} has no interconnect")
        if self.kind in (LinkKind.PEER_PUBLIC, LinkKind.PEER_ROUTE_SERVER):
            if self.ixp_id is None:
                raise ValueError(f"IXP peering link {self.a}<->{self.b} missing ixp_id")
        elif self.ixp_id is not None:
            raise ValueError(f"non-IXP link {self.a}<->{self.b} has ixp_id set")

    def other(self, node_id: int) -> int:
        """The far end of the link, given one end."""
        if node_id == self.a:
            return self.b
        if node_id == self.b:
            return self.a
        raise ValueError(f"node {node_id} is not on link {self.a}<->{self.b}")

    def addr_of(self, node_id: int, interconnect: Interconnect) -> IPv4Address:
        """The interface address of ``node_id``'s side at an interconnect."""
        if node_id == self.a:
            return interconnect.addr_a
        if node_id == self.b:
            return interconnect.addr_b
        raise ValueError(f"node {node_id} is not on link {self.a}<->{self.b}")
