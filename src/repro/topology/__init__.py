"""AS-level Internet topology with geography.

The catchment inefficiencies this paper studies are produced by BGP policy
routing over the Internet's AS graph.  This package builds a synthetic but
structurally faithful Internet:

- a tier-1 clique of transit-free backbones with worldwide PoPs;
- regional transit providers homed on a continent;
- stub/eyeball ASes (where RIPE-Atlas-like probes live) in specific metros;
- IXPs where ASes peer either *publicly* (bilateral sessions over the IXP
  fabric) or via the IXP's *route server* — the distinction §5.4 / Fig. 7
  shows BGP cares about;
- every adjacency carries one or more geographic interconnects, so an AS
  path maps to a concrete sequence of router locations and therefore to a
  concrete propagation latency.

Modules:

- :mod:`repro.topology.asys` — AS, PoP, link, and relationship value types.
- :mod:`repro.topology.ixp` — IXP model (members, peering LAN, route server).
- :mod:`repro.topology.graph` — the mutable topology container + adjacency
  indexes consumed by the routing engine.
- :mod:`repro.topology.builder` — the seeded synthetic Internet generator.
- :mod:`repro.topology.stats` — structural statistics and validation.
"""

from repro.topology.asys import (
    AutonomousSystem,
    Interconnect,
    Link,
    LinkKind,
    PoP,
    Tier,
)
from repro.topology.builder import InternetBuilder, TopologyParams
from repro.topology.graph import Topology, TopologyError
from repro.topology.ixp import IXP

__all__ = [
    "AutonomousSystem",
    "IXP",
    "Interconnect",
    "InternetBuilder",
    "Link",
    "LinkKind",
    "PoP",
    "Tier",
    "Topology",
    "TopologyError",
    "TopologyParams",
]
