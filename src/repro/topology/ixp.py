"""Internet Exchange Points.

An IXP provides a shared peering LAN in one metro.  Members can peer
*publicly* (bilateral BGP sessions over the fabric) or via the IXP's
*route server* (one multilateral session).  Two properties matter to the
reproduction:

- Interface addresses on the peering LAN belong to the IXP's prefix, which
  is **not announced in BGP** — the paper finds 49% of traceroute p-hops
  fall in IXP space and are invisible in RouteViews (§5.3).  The simulator
  reproduces that by numbering IXP interconnects from the IXP LAN prefix
  and excluding those prefixes from the IP-to-AS table.
- BGP routers typically prefer routes from public peers over routes from
  route-server peers (§5.4, Fig. 7); the routing engine gives the two
  kinds different preference tiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.atlas import City
from repro.netaddr.ipv4 import IPv4Address, IPv4Prefix


@dataclass
class IXP:
    """One Internet Exchange Point."""

    ixp_id: int
    name: str
    city: City
    #: The peering-LAN prefix interface addresses are numbered from.
    lan_prefix: IPv4Prefix
    #: Node ids of member ASes (joined at build or deployment time).
    members: set[int] = field(default_factory=set)
    #: Members attached to the route server (multilateral peering).
    route_server_members: set[int] = field(default_factory=set)
    #: Whether the IXP publishes its route-server feed.  §5.4 notes many
    #: IXPs do not, which limits how many peering-type-override cases the
    #: case-study classifier can attribute.
    publishes_route_server_feed: bool = True
    _next_host: int = field(default=1, repr=False)

    def join(self, node_id: int, route_server: bool = False) -> None:
        """Register a member on the peering LAN."""
        self.members.add(node_id)
        if route_server:
            self.route_server_members.add(node_id)

    def is_member(self, node_id: int) -> bool:
        return node_id in self.members

    def allocate_lan_address(self) -> IPv4Address:
        """Hand out the next interface address on the peering LAN."""
        if self._next_host >= self.lan_prefix.num_addresses - 1:
            raise RuntimeError(f"IXP {self.name} peering LAN exhausted")
        addr = self.lan_prefix.address(self._next_host)
        self._next_host += 1
        return addr

    def owns(self, addr: IPv4Address) -> bool:
        """Whether an address sits on this IXP's peering LAN."""
        return addr in self.lan_prefix

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}@{self.city.iata}"
