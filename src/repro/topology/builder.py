"""Seeded synthetic Internet generator.

The builder produces an Internet with the structural features that drive
the paper's findings:

- a **tier-1 clique** of transit-free backbones with PoPs worldwide — large
  ASes "may span multiple continents", which is why same-length AS paths can
  have wildly different latencies (§2.1);
- **regional transit providers** homed on a continent, a fraction of which
  buy *intercontinental* transit (the SingTel-under-Zayo pattern of Fig. 1
  that pulls traffic across oceans through customer-route preference);
- **stub / eyeball ASes** in specific metros, where probes live;
- **IXPs** in hub cities, with both public (bilateral) and route-server
  (multilateral) peering — the preference between them drives Fig. 7.

Everything is derived from a single integer seed; two builds with the same
parameters are identical object-for-object.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import obs
from repro.geo.areas import Area
from repro.geo.atlas import City, WorldAtlas, load_default_atlas
from repro.netaddr.allocator import PrefixAllocator
from repro.netaddr.ipv4 import IPv4Prefix
from repro.topology.asys import (
    AutonomousSystem,
    Interconnect,
    Link,
    LinkKind,
    PoP,
    Tier,
)
from repro.topology.graph import Topology, TopologyError
from repro.topology.ixp import IXP

#: Cities where tier-1 backbones concentrate PoPs.
_BACKBONE_CITIES: tuple[str, ...] = (
    "JFK", "IAD", "ORD", "DFW", "LAX", "SJC", "SEA", "MIA", "ATL", "DEN",
    "YYZ", "YVR",
    "LHR", "AMS", "FRA", "CDG", "MAD", "MXP", "ARN", "VIE", "WAW", "ZRH",
    "SIN", "HKG", "NRT", "ICN", "SYD", "BOM", "TPE",
    "GRU", "EZE", "SCL", "BOG", "MEX",
    "JNB", "CAI", "LOS", "NBO",
    "DXB", "IST", "TLV", "SVO",
)

#: Cities that host an IXP in the default build, roughly mirroring where
#: the large real-world exchanges sit (AMS-IX, DE-CIX, LINX, Equinix, ...).
_DEFAULT_IXP_CITIES: tuple[str, ...] = (
    "AMS", "FRA", "LHR", "CDG", "WAW", "ARN", "MXP", "MAD", "VIE", "PRG",
    "IAD", "JFK", "ORD", "DFW", "SJC", "LAX", "SEA", "MIA", "YYZ",
    "SIN", "HKG", "NRT", "ICN", "SYD", "BOM", "TPE",
    "GRU", "EZE", "SCL", "BOG",
    "JNB", "NBO", "LOS", "CAI", "DXB", "IST", "SVO",
)

#: Share of transit ASes homed in each area (EMEA-heavy, like the real
#: transit market and like RIPE Atlas coverage).
_TRANSIT_AREA_WEIGHTS: tuple[tuple[Area, float], ...] = (
    (Area.EMEA, 0.38),
    (Area.NA, 0.27),
    (Area.APAC, 0.23),
    (Area.LATAM, 0.12),
)

#: Share of stub ASes per area, matching the paper's probe-group densities
#: (EMEA 3859, NA 1154, APAC 613, LatAm 141 of 5767 groups).
_STUB_AREA_WEIGHTS: tuple[tuple[Area, float], ...] = (
    (Area.EMEA, 0.62),
    (Area.NA, 0.20),
    (Area.APAC, 0.12),
    (Area.LATAM, 0.06),
)


@dataclass
class TopologyParams:
    """Knobs of the synthetic Internet generator."""

    seed: int = 42
    num_tier1: int = 10
    num_transit: int = 240
    num_stubs: int = 900
    #: PoPs per tier-1 (sampled without replacement from backbone cities).
    tier1_pops: int = 26
    #: PoP count range for transit ASes within their home area.
    transit_pops_min: int = 2
    transit_pops_max: int = 6
    #: Probability a transit AS buys transit from a transit in another area
    #: (the intercontinental-customer pattern behind Fig. 1).
    transit_intercontinental_prob: float = 0.25
    #: Area weights for choosing the intercontinental *provider* (the
    #: global transit market is NA-centric).
    intercontinental_provider_weights: dict[Area, float] = field(
        default_factory=lambda: {
            Area.NA: 6.0,
            Area.EMEA: 2.0,
            Area.APAC: 1.0,
            Area.LATAM: 0.5,
        }
    )
    #: Probability two same-area transits sharing a metro peer privately.
    transit_private_peer_prob: float = 0.30
    #: Probability a stub is multihomed to a second transit.
    stub_multihome_prob: float = 0.30
    #: Probability a stub in an IXP metro joins the IXP.
    stub_ixp_join_prob: float = 0.25
    #: Probability a transit with a PoP in an IXP metro joins the IXP.
    transit_ixp_join_prob: float = 0.65
    #: Probability two IXP members establish a *public* bilateral session.
    ixp_public_peer_prob: float = 0.35
    #: Probability an IXP member attaches to the route server.
    ixp_route_server_prob: float = 0.55
    #: Fraction of IXPs that publish their route-server feed (§5.4 notes
    #: many do not, limiting case attribution).
    ixp_feed_publish_fraction: float = 0.4
    #: Interconnect extra-latency range, in milliseconds.
    interconnect_extra_ms: tuple[float, float] = (0.1, 1.2)
    ixp_cities: tuple[str, ...] = _DEFAULT_IXP_CITIES
    #: Infrastructure prefix length allocated per AS, by tier.  /19 per
    #: node caps the 10.0.0.0/8 pool at 2048 ASes; the LARGE/XL presets
    #: shrink transit and stub allocations to fit tens of thousands.
    tier1_infra_prefix: int = 19
    transit_infra_prefix: int = 19
    stub_infra_prefix: int = 19
    #: Wire transit members of consecutive IXPs into a private-peering
    #: ring (the seed-emulator IX-ring pattern).  Off by default so the
    #: DEFAULT/SMALL RNG streams — and their golden topologies — are
    #: untouched; LARGE/XL enable it.
    ixp_ring: bool = False

    def __post_init__(self) -> None:
        if self.num_tier1 < 3:
            raise ValueError("need at least 3 tier-1 ASes for a clique")
        if self.transit_pops_min < 1 or self.transit_pops_max < self.transit_pops_min:
            raise ValueError("invalid transit PoP range")


@dataclass
class AddressPlan:
    """Address pools shared by the topology and later deployments."""

    infra: PrefixAllocator
    ixp_lans: PrefixAllocator
    services: PrefixAllocator
    hosts: PrefixAllocator
    _per_node: dict[int, PrefixAllocator] = field(default_factory=dict)

    @classmethod
    def default(cls) -> "AddressPlan":
        return cls(
            infra=PrefixAllocator(IPv4Prefix.parse("10.0.0.0/8")),
            ixp_lans=PrefixAllocator(IPv4Prefix.parse("172.16.0.0/12")),
            services=PrefixAllocator(IPv4Prefix.parse("198.0.0.0/8")),
            hosts=PrefixAllocator(IPv4Prefix.parse("100.0.0.0/8")),
        )

    def infra_for(self, node: AutonomousSystem) -> PrefixAllocator:
        """Per-node interface allocator, carved from the node's infra prefix."""
        alloc = self._per_node.get(node.node_id)
        if alloc is None:
            if node.infra_prefix is None:
                raise TopologyError(f"node {node.node_id} has no infra prefix")
            alloc = PrefixAllocator(node.infra_prefix)
            # Skip the network address so interface IPs are never .0.
            alloc.allocate(32)
            self._per_node[node.node_id] = alloc
        return alloc


class InternetBuilder:
    """Builds a :class:`Topology` from :class:`TopologyParams`."""

    def __init__(
        self,
        params: TopologyParams | None = None,
        atlas: WorldAtlas | None = None,
        plan: AddressPlan | None = None,
    ):
        self.params = params or TopologyParams()
        self.atlas = atlas or load_default_atlas()
        self.plan = plan or AddressPlan.default()
        self._rng = random.Random(self.params.seed)
        self._next_asn = {Tier.TIER1: 101, Tier.TRANSIT: 2001, Tier.STUB: 10001}
        self._infra_prefix = {
            Tier.TIER1: self.params.tier1_infra_prefix,
            Tier.TRANSIT: self.params.transit_infra_prefix,
            Tier.STUB: self.params.stub_infra_prefix,
        }
        #: Proximity-ranked transit pools per stub metro.  The ranking is
        #: a pure sort (no RNG draws), so memoizing it changes nothing in
        #: the random stream — it only stops LARGE/XL builds re-sorting
        #: hundreds of transits for every one of thousands of stubs.
        self._stub_pools: dict[str, list[AutonomousSystem]] = {}

    # ------------------------------------------------------------------
    def build(self) -> Topology:
        """Generate the Internet and validate it."""
        with obs.span("topology.generate", seed=self.params.seed):
            topo = Topology()
            topo.address_plan = self.plan  # type: ignore[attr-defined]
            topo.atlas = self.atlas  # type: ignore[attr-defined]
            with obs.span("topology.tier1s"):
                tier1s = self._build_tier1s(topo)
            with obs.span("topology.transits"):
                transits = self._build_transits(topo, tier1s)
            with obs.span("topology.stubs"):
                self._build_stubs(topo, transits)
            with obs.span("topology.ixps"):
                self._build_ixps(topo)
            with obs.span("topology.validate"):
                topo.validate()
            obs.counter.inc("topology.builds")
            obs.gauge.set("topology.nodes", topo.num_nodes)
            obs.gauge.set("topology.links", topo.num_links)
        return topo

    # ------------------------------------------------------------------
    # Node factories
    # ------------------------------------------------------------------
    def _new_as(
        self,
        tier: Tier,
        name: str,
        home_country: str,
        cities: list[City],
    ) -> AutonomousSystem:
        asn = self._next_asn[tier]
        self._next_asn[tier] += 1
        infra = self.plan.infra.allocate(self._infra_prefix[tier])
        return AutonomousSystem(
            node_id=asn,
            asn=asn,
            name=name,
            tier=tier,
            home_country=home_country,
            pops=tuple(PoP(city=c) for c in cities),
            infra_prefix=infra,
        )

    def _build_tier1s(self, topo: Topology) -> list[AutonomousSystem]:
        backbone = [self.atlas.get(iata) for iata in _BACKBONE_CITIES]
        home_countries = ["US", "US", "US", "GB", "DE", "FR", "SE", "JP", "IN", "IT",
                          "US", "NL", "ES", "HK", "AU"]
        tier1s = []
        for i in range(self.params.num_tier1):
            count = min(self.params.tier1_pops, len(backbone))
            cities = self._rng.sample(backbone, count)
            node = self._new_as(
                Tier.TIER1,
                name=f"backbone-{i:02d}",
                home_country=home_countries[i % len(home_countries)],
                cities=cities,
            )
            topo.add_node(node)
            tier1s.append(node)
        # Full clique of private peering, interconnecting in shared metros.
        for i, a in enumerate(tier1s):
            for b in tier1s[i + 1 :]:
                self._link_peers(topo, a, b, LinkKind.PEER_PRIVATE, max_interconnects=32)
        return tier1s

    def _build_transits(
        self, topo: Topology, tier1s: list[AutonomousSystem]
    ) -> list[AutonomousSystem]:
        transits: list[AutonomousSystem] = []
        area_quota = self._quota(self.params.num_transit, _TRANSIT_AREA_WEIGHTS)
        idx = 0
        for area, count in area_quota:
            area_cities = self.atlas.in_area(area)
            for _ in range(count):
                n_pops = self._rng.randint(
                    self.params.transit_pops_min, self.params.transit_pops_max
                )
                n_pops = min(n_pops, len(area_cities))
                cities = self._rng.sample(area_cities, n_pops)
                home_country = cities[0].country
                node = self._new_as(
                    Tier.TRANSIT,
                    name=f"transit-{area.value.lower()}-{idx:03d}",
                    home_country=home_country,
                    cities=cities,
                )
                topo.add_node(node)
                transits.append(node)
                idx += 1
        # Providers: 1-3 tier-1s each, interconnecting near the transit.
        for node in transits:
            n_prov = self._rng.randint(1, 3)
            for provider in self._rng.sample(tier1s, n_prov):
                self._link_transit(topo, customer=node, provider=provider,
                                   max_interconnects=8)
        # Intercontinental transit customers: an area transit buys transit
        # from a transit homed in another area (Fig. 1's SingTel pattern).
        # Providers are drawn with NA-heavy weights: the global transit
        # market is centred on large North American carriers, so foreign
        # customer cones — and the global-anycast catchment pathologies
        # they cause — concentrate behind NA providers.
        for node in transits:
            if self._rng.random() >= self.params.transit_intercontinental_prob:
                continue
            foreign = [
                t
                for t in transits
                if t.node_id != node.node_id
                and t.pops[0].city.area is not node.pops[0].city.area
            ]
            if not foreign:
                continue
            weights = [
                self.params.intercontinental_provider_weights.get(
                    t.pops[0].city.area, 1.0
                )
                for t in foreign
            ]
            provider = self._rng.choices(foreign, weights, k=1)[0]
            if topo.has_link(node.node_id, provider.node_id):
                continue
            self._link_transit(topo, customer=node, provider=provider)
        # Private peering between same-area transits sharing a metro.
        for i, a in enumerate(transits):
            a_cities = {p.iata for p in a.pops}
            for b in transits[i + 1 :]:
                if topo.has_link(a.node_id, b.node_id):
                    continue
                if not a_cities.intersection(p.iata for p in b.pops):
                    continue
                if self._rng.random() < self.params.transit_private_peer_prob:
                    self._link_peers(topo, a, b, LinkKind.PEER_PRIVATE)
        return transits

    def _build_stubs(
        self, topo: Topology, transits: list[AutonomousSystem]
    ) -> list[AutonomousSystem]:
        stubs: list[AutonomousSystem] = []
        area_quota = self._quota(self.params.num_stubs, _STUB_AREA_WEIGHTS)
        # Index transits by area for provider selection.
        by_area: dict[Area, list[AutonomousSystem]] = {}
        for t in transits:
            by_area.setdefault(t.pops[0].city.area, []).append(t)
        for area, count in area_quota:
            cities = self.atlas.in_area(area)
            area_transits = by_area.get(area, [])
            if not area_transits:
                raise TopologyError(f"no transit ASes available in {area}")
            for i in range(count):
                city = self._rng.choice(cities)
                node = self._new_as(
                    Tier.STUB,
                    name=f"stub-{city.iata.lower()}-{i:04d}",
                    home_country=city.country,
                    cities=[city],
                )
                topo.add_node(node)
                stubs.append(node)
                providers = self._pick_stub_providers(city, area_transits)
                for provider in providers:
                    self._link_transit(topo, customer=node, provider=provider)
        return stubs

    def _pick_stub_providers(
        self, city: City, area_transits: list[AutonomousSystem]
    ) -> list[AutonomousSystem]:
        """Choose 1-2 nearby transits for a stub, weighted toward proximity."""
        pool = self._stub_pools.get(city.iata)
        if pool is None:
            ranked = sorted(
                area_transits,
                key=lambda t: t.nearest_pop(city).city.location.distance_km(city.location),
            )
            # Sample from the nearest candidates with mild randomness so
            # stubs in one metro do not all share a single provider.
            pool = ranked[: max(4, len(ranked) // 4)]
            self._stub_pools[city.iata] = pool
        first = self._rng.choice(pool)
        providers = [first]
        if self._rng.random() < self.params.stub_multihome_prob and len(pool) > 1:
            second = self._rng.choice([t for t in pool if t is not first])
            providers.append(second)
        return providers

    # ------------------------------------------------------------------
    # IXPs
    # ------------------------------------------------------------------
    def _build_ixps(self, topo: Topology) -> None:
        nodes = list(topo.nodes())
        transit_members_per_ixp: list[list[AutonomousSystem]] = []
        for i, iata in enumerate(self.params.ixp_cities):
            city = self.atlas.get(iata)
            ixp = IXP(
                ixp_id=i + 1,
                name=f"IX-{iata}",
                city=city,
                lan_prefix=self.plan.ixp_lans.allocate(22),
                publishes_route_server_feed=(
                    self._rng.random() < self.params.ixp_feed_publish_fraction
                ),
            )
            topo.add_ixp(ixp)
            members: list[AutonomousSystem] = []
            for node in nodes:
                if not node.has_pop_in(iata):
                    continue
                if node.tier is Tier.TIER1:
                    continue  # tier-1s rely on PNIs in this model
                join_prob = (
                    self.params.transit_ixp_join_prob
                    if node.tier is Tier.TRANSIT
                    else self.params.stub_ixp_join_prob
                )
                if self._rng.random() < join_prob:
                    ixp.join(node.node_id)
                    members.append(node)
            self._wire_ixp(topo, ixp, members)
            transit_members_per_ixp.append(
                [m for m in members if m.tier is Tier.TRANSIT]
            )
        if self.params.ixp_ring and len(transit_members_per_ixp) > 1:
            self._wire_ixp_ring(topo, transit_members_per_ixp)

    def _wire_ixp_ring(
        self,
        topo: Topology,
        transit_members_per_ixp: list[list[AutonomousSystem]],
    ) -> None:
        """Privately peer one transit of each IXP with one of the next.

        The seed-emulator IX-ring: consecutive exchanges are stitched
        through their transit members, giving large worlds the lateral
        backbone real regional ecosystems have without inflating the
        tier-1 clique.  Only runs when ``ixp_ring`` is set, so presets
        that predate the knob keep their exact RNG stream.
        """
        count = len(transit_members_per_ixp)
        for i in range(count):
            here = transit_members_per_ixp[i]
            there = transit_members_per_ixp[(i + 1) % count]
            if not here or not there:
                continue
            a = self._rng.choice(here)
            candidates = [
                t
                for t in there
                if t.node_id != a.node_id
                and not topo.has_link(a.node_id, t.node_id)
            ]
            if not candidates:
                continue
            b = self._rng.choice(candidates)
            self._link_peers(topo, a, b, LinkKind.PEER_PRIVATE)

    def _wire_ixp(
        self, topo: Topology, ixp: IXP, members: list[AutonomousSystem]
    ) -> None:
        """Create public and route-server sessions among IXP members.

        When a pair would have both a public session and a route-server
        session, only the public one is materialised: BGP prefers public
        peers to route-server peers (§5.4), so the route-server duplicate
        could never carry traffic.
        """
        rs_ids = {
            m.node_id
            for m in members
            if self._rng.random() < self.params.ixp_route_server_prob
        }
        ixp.route_server_members.update(rs_ids)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                if topo.has_link(a.node_id, b.node_id):
                    continue
                public = self._rng.random() < self.params.ixp_public_peer_prob
                both_rs = a.node_id in rs_ids and b.node_id in rs_ids
                if not public and not both_rs:
                    continue
                kind = LinkKind.PEER_PUBLIC if public else LinkKind.PEER_ROUTE_SERVER
                ic = Interconnect(
                    city=ixp.city,
                    addr_a=ixp.allocate_lan_address(),
                    addr_b=ixp.allocate_lan_address(),
                    extra_ms=self._extra_ms(),
                )
                topo.add_link(
                    Link(
                        a=a.node_id,
                        b=b.node_id,
                        kind=kind,
                        interconnects=(ic,),
                        ixp_id=ixp.ixp_id,
                    )
                )

    # ------------------------------------------------------------------
    # Link helpers
    # ------------------------------------------------------------------
    def _extra_ms(self) -> float:
        lo, hi = self.params.interconnect_extra_ms
        return self._rng.uniform(lo, hi)

    def _shared_cities(
        self, a: AutonomousSystem, b: AutonomousSystem
    ) -> list[City]:
        b_iatas = {p.iata for p in b.pops}
        return [p.city for p in a.pops if p.iata in b_iatas]

    def _interconnect_cities(
        self, a: AutonomousSystem, b: AutonomousSystem, max_interconnects: int
    ) -> list[City]:
        """Cities where a link between ``a`` and ``b`` physically exists.

        Prefer metros both networks are present in; otherwise the pair
        interconnects at the provider-side PoP nearest the customer (the
        customer backhauls to it, which the latency model charges for).
        """
        shared = self._shared_cities(a, b)
        if shared:
            if len(shared) > max_interconnects:
                shared = self._rng.sample(shared, max_interconnects)
            return shared
        anchor = a.pops[0].city
        return [b.nearest_pop(anchor).city]

    def _link_transit(
        self,
        topo: Topology,
        customer: AutonomousSystem,
        provider: AutonomousSystem,
        max_interconnects: int = 6,
    ) -> None:
        cities = self._interconnect_cities(customer, provider, max_interconnects)
        cust_alloc = self.plan.infra_for(customer)
        prov_alloc = self.plan.infra_for(provider)
        ics = tuple(
            Interconnect(
                city=city,
                addr_a=cust_alloc.allocate(32).network_address,
                addr_b=prov_alloc.allocate(32).network_address,
                extra_ms=self._extra_ms(),
            )
            for city in cities
        )
        topo.add_link(
            Link(a=customer.node_id, b=provider.node_id, kind=LinkKind.TRANSIT,
                 interconnects=ics)
        )

    def _link_peers(
        self,
        topo: Topology,
        a: AutonomousSystem,
        b: AutonomousSystem,
        kind: LinkKind,
        max_interconnects: int = 6,
    ) -> None:
        cities = self._interconnect_cities(a, b, max_interconnects)
        a_alloc = self.plan.infra_for(a)
        b_alloc = self.plan.infra_for(b)
        ics = tuple(
            Interconnect(
                city=city,
                addr_a=a_alloc.allocate(32).network_address,
                addr_b=b_alloc.allocate(32).network_address,
                extra_ms=self._extra_ms(),
            )
            for city in cities
        )
        topo.add_link(Link(a=a.node_id, b=b.node_id, kind=kind, interconnects=ics))

    # ------------------------------------------------------------------
    @staticmethod
    def _quota(total: int, weights: tuple[tuple[Area, float], ...]) -> list[tuple[Area, int]]:
        """Split ``total`` across areas by weight, remainder to the first."""
        quota = [(area, int(total * w)) for area, w in weights]
        assigned = sum(c for _, c in quota)
        if quota and assigned < total:
            area0, c0 = quota[0]
            quota[0] = (area0, c0 + (total - assigned))
        return quota
