"""The topology container and its adjacency indexes.

A :class:`Topology` owns the nodes (ASes and anycast site nodes), the links
between them, and the IXPs.  It maintains the adjacency indexes the BGP
engine consumes (customers / peers / providers per node) and a registry of
every router interface address so measurement tooling can attribute a
traceroute hop to its owner, location, and — when applicable — IXP.

The container is mutable on purpose: experiments first build the base
Internet, then attach CDN and testbed site nodes to it.  A ``version``
counter is bumped on every mutation so routing results cached against a
topology can detect staleness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.geo.atlas import City
from repro.netaddr.ipv4 import IPv4Address
from repro.topology.asys import AutonomousSystem, Interconnect, Link, LinkKind
from repro.topology.ixp import IXP


class TopologyError(RuntimeError):
    """Raised for structurally invalid topology mutations or lookups."""


@dataclass(frozen=True)
class InterfaceInfo:
    """Everything known about one router interface address."""

    addr: IPv4Address
    node_id: int
    city: City
    link: Link
    #: Set when the interface sits on an IXP peering LAN (the address then
    #: belongs to the IXP's prefix, not the node's infrastructure space).
    ixp_id: int | None


class Topology:
    """Mutable AS-level topology with geographic interconnects."""

    def __init__(self) -> None:
        self._nodes: dict[int, AutonomousSystem] = {}
        self._links: list[Link] = []
        self._link_by_pair: dict[tuple[int, int], Link] = {}
        self._ixps: dict[int, IXP] = {}
        # Adjacency indexes, updated incrementally by add_link().
        self._providers: dict[int, list[int]] = {}
        self._customers: dict[int, list[int]] = {}
        self._peers: dict[int, list[tuple[int, LinkKind]]] = {}
        self._interfaces: dict[IPv4Address, InterfaceInfo] = {}
        self.version = 0

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: AutonomousSystem) -> None:
        if node.node_id in self._nodes:
            raise TopologyError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node
        self._providers[node.node_id] = []
        self._customers[node.node_id] = []
        self._peers[node.node_id] = []
        self.version += 1

    def node(self, node_id: int) -> AutonomousSystem:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def nodes(self) -> Iterator[AutonomousSystem]:
        return iter(self._nodes.values())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # IXPs
    # ------------------------------------------------------------------
    def add_ixp(self, ixp: IXP) -> None:
        if ixp.ixp_id in self._ixps:
            raise TopologyError(f"duplicate IXP id {ixp.ixp_id}")
        self._ixps[ixp.ixp_id] = ixp
        self.version += 1

    def ixp(self, ixp_id: int) -> IXP:
        try:
            return self._ixps[ixp_id]
        except KeyError:
            raise TopologyError(f"unknown IXP id {ixp_id}") from None

    def ixps(self) -> Iterator[IXP]:
        return iter(self._ixps.values())

    def ixps_in(self, iata: str) -> list[IXP]:
        return [ixp for ixp in self._ixps.values() if ixp.city.iata == iata]

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    @staticmethod
    def _pair_key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    def add_link(self, link: Link) -> None:
        for end in (link.a, link.b):
            if end not in self._nodes:
                raise TopologyError(f"link references unknown node {end}")
        key = self._pair_key(link.a, link.b)
        if key in self._link_by_pair:
            raise TopologyError(f"duplicate link between {link.a} and {link.b}")
        self._links.append(link)
        self._link_by_pair[key] = link
        if link.kind is LinkKind.TRANSIT:
            # Link convention: a is the customer, b is the provider.
            self._providers[link.a].append(link.b)
            self._customers[link.b].append(link.a)
        else:
            self._peers[link.a].append((link.b, link.kind))
            self._peers[link.b].append((link.a, link.kind))
        for ic in link.interconnects:
            self._register_interface(link, ic)
        self.version += 1

    def _register_interface(self, link: Link, ic: Interconnect) -> None:
        for node_id, addr in ((link.a, ic.addr_a), (link.b, ic.addr_b)):
            if addr in self._interfaces:
                raise TopologyError(f"interface address reuse: {addr}")
            self._interfaces[addr] = InterfaceInfo(
                addr=addr,
                node_id=node_id,
                city=ic.city,
                link=link,
                ixp_id=link.ixp_id,
            )

    def links(self) -> Iterator[Link]:
        return iter(self._links)

    @property
    def num_links(self) -> int:
        return len(self._links)

    def link_between(self, a: int, b: int) -> Link:
        try:
            return self._link_by_pair[self._pair_key(a, b)]
        except KeyError:
            raise TopologyError(f"no link between {a} and {b}") from None

    def has_link(self, a: int, b: int) -> bool:
        return self._pair_key(a, b) in self._link_by_pair

    # ------------------------------------------------------------------
    # Adjacency views consumed by the routing engine
    # ------------------------------------------------------------------
    def providers_of(self, node_id: int) -> list[int]:
        """Nodes this node buys transit from."""
        return self._providers[node_id]

    def customers_of(self, node_id: int) -> list[int]:
        """Nodes that buy transit from this node."""
        return self._customers[node_id]

    def peers_of(self, node_id: int) -> list[tuple[int, LinkKind]]:
        """(neighbor, peering kind) pairs for this node."""
        return self._peers[node_id]

    def neighbors_of(self, node_id: int) -> list[int]:
        return (
            self._providers[node_id]
            + self._customers[node_id]
            + [n for n, _ in self._peers[node_id]]
        )

    def degree(self, node_id: int) -> int:
        return len(self.neighbors_of(node_id))

    # ------------------------------------------------------------------
    # Interface / address attribution
    # ------------------------------------------------------------------
    def interface_info(self, addr: IPv4Address) -> InterfaceInfo | None:
        """Attribution for a router interface address, or None."""
        return self._interfaces.get(addr)

    def owner_asn(self, addr: IPv4Address) -> int | None:
        """ASN owning an interface address via its infrastructure prefix.

        Addresses on IXP peering LANs return ``None`` — exactly the
        "p-hop belongs to an IXP, invisible in BGP" case of §5.3.
        """
        info = self._interfaces.get(addr)
        if info is None or info.ixp_id is not None:
            return None
        return self._nodes[info.node_id].asn

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`.

        Invariants: every non-tier-1, non-IXP node must be able to reach a
        tier-1 by following provider links (otherwise it would be
        partitioned from the default-free zone), and transit links must
        not form customer-provider cycles.
        """
        from repro.topology.asys import Tier

        tier1 = {n.node_id for n in self._nodes.values() if n.tier is Tier.TIER1}
        if not tier1:
            raise TopologyError("topology has no tier-1 ASes")
        # Reachability to the clique via provider edges.
        for node in self._nodes.values():
            if node.tier is Tier.TIER1:
                continue
            seen = {node.node_id}
            frontier = [node.node_id]
            reached = False
            while frontier and not reached:
                nxt = []
                for nid in frontier:
                    for prov in self._providers[nid]:
                        if prov in tier1:
                            reached = True
                            break
                        if prov not in seen:
                            seen.add(prov)
                            nxt.append(prov)
                    if reached:
                        break
                frontier = nxt
            if not reached and (self._providers[node.node_id] or not self._peers[node.node_id]):
                raise TopologyError(
                    f"node {node.node_id} ({node.name}) cannot reach the tier-1 clique"
                )
        self._check_no_transit_cycles()

    def _check_no_transit_cycles(self) -> None:
        # Kahn's algorithm over customer->provider edges.
        indegree = {nid: 0 for nid in self._nodes}
        for nid in self._nodes:
            for prov in self._providers[nid]:
                indegree[prov] += 1
        queue = [nid for nid, deg in indegree.items() if deg == 0]
        seen = 0
        while queue:
            nid = queue.pop()
            seen += 1
            for prov in self._providers[nid]:
                indegree[prov] -= 1
                if indegree[prov] == 0:
                    queue.append(prov)
        if seen != len(self._nodes):
            raise TopologyError("customer-provider relationships contain a cycle")
