"""Structural statistics over a topology.

Used by tests to sanity-check generated Internets and by examples to print
a summary of the world an experiment runs in.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.geo.areas import Area
from repro.topology.asys import LinkKind, Tier
from repro.topology.graph import Topology


@dataclass(frozen=True)
class TopologySummary:
    """Counts describing a generated Internet."""

    nodes_by_tier: dict[Tier, int]
    links_by_kind: dict[LinkKind, int]
    stubs_by_area: dict[Area, int]
    num_ixps: int
    num_interconnects: int
    mean_stub_degree: float
    max_degree: int

    def as_text(self) -> str:
        """Human-readable one-paragraph summary."""
        tiers = ", ".join(f"{t.value}={n}" for t, n in sorted(
            self.nodes_by_tier.items(), key=lambda kv: kv[0].value))
        kinds = ", ".join(f"{k.value}={n}" for k, n in sorted(
            self.links_by_kind.items(), key=lambda kv: kv[0].value))
        areas = ", ".join(f"{a.value}={n}" for a, n in sorted(
            self.stubs_by_area.items(), key=lambda kv: kv[0].value))
        return (
            f"nodes: {tiers}\n"
            f"links: {kinds} ({self.num_interconnects} interconnects)\n"
            f"stubs by area: {areas}\n"
            f"IXPs: {self.num_ixps}; mean stub degree "
            f"{self.mean_stub_degree:.2f}; max degree {self.max_degree}"
        )


def summarize(topology: Topology) -> TopologySummary:
    """Compute a :class:`TopologySummary` for a topology."""
    tier_counts: Counter[Tier] = Counter()
    area_counts: Counter[Area] = Counter()
    stub_degrees: list[int] = []
    max_degree = 0
    for node in topology.nodes():
        tier_counts[node.tier] += 1
        degree = topology.degree(node.node_id)
        max_degree = max(max_degree, degree)
        if node.tier is Tier.STUB:
            area_counts[node.pops[0].city.area] += 1
            stub_degrees.append(degree)
    kind_counts: Counter[LinkKind] = Counter()
    num_interconnects = 0
    for link in topology.links():
        kind_counts[link.kind] += 1
        num_interconnects += len(link.interconnects)
    mean_stub_degree = (
        sum(stub_degrees) / len(stub_degrees) if stub_degrees else 0.0
    )
    return TopologySummary(
        nodes_by_tier=dict(tier_counts),
        links_by_kind=dict(kind_counts),
        stubs_by_area=dict(area_counts),
        num_ixps=sum(1 for _ in topology.ixps()),
        num_interconnects=num_interconnects,
        mean_stub_degree=mean_stub_degree,
        max_degree=max_degree,
    )
