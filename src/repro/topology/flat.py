"""Flat int-indexed adjacency: the routing engine's hot-path view.

The :class:`~repro.topology.graph.Topology` container is built for
mutation and attribution — dicts of lists, dataclass nodes, per-link
interconnect objects.  The Gao-Rexford sweep only needs three things per
node: its providers, its customers, and its peers with their preference
tier.  :class:`FlatAdjacency` packs exactly that into CSR-style
``array('i')`` columns, built once per topology version and memoized, so
the three-pass engine iterates int arrays instead of chasing object
graphs — and so forked workers inherit one compact, copy-on-write block
instead of touching (and copying) the object topology's refcounts.

Neighbor order inside each CSR row is the *insertion order* of the
underlying topology's adjacency lists.  The engine's results are
insertion-order sensitive (equal-best sets preserve discovery order
before the hot-potato sort), so this mirroring is what keeps flat and
dict computes byte-identical.

The exit-kilometre metric (nearest PoP to nearest link interconnect —
the hot-potato tie-break) is served from a per-adjacency memo backed by
a module-level city-pair distance memo, filled lazily or all at once via
:meth:`FlatAdjacency.precompute_km` before a fan-out forks workers.
"""

from __future__ import annotations

import weakref
from array import array
from typing import TYPE_CHECKING, Iterator

from repro.routing.route import PrefTier
from repro.topology.asys import LinkKind

if TYPE_CHECKING:
    from repro.geo.coords import GeoPoint
    from repro.topology.graph import Topology

#: Great-circle km between two city locations, memoized per GeoPoint
#: pair.  GeoPoints are frozen/hashable and version-independent, so the
#: memo is shared across topologies and never invalidated.
_PAIR_KM: dict[tuple["GeoPoint", "GeoPoint"], float] = {}


def _pair_km(a: "GeoPoint", b: "GeoPoint") -> float:
    key = (a, b)
    km = _PAIR_KM.get(key)
    if km is None:
        km = a.distance_km(b)
        _PAIR_KM[key] = km  # repro-lint: disable=fork-global-write -- idempotent content-derived memo
    return km


class FlatAdjacency:
    """CSR provider/customer/peer arrays over one topology version."""

    __slots__ = (
        "version",
        "num_nodes",
        "node_ids",
        "_row",
        "_prov_ptr",
        "_prov_ids",
        "_cust_ptr",
        "_cust_ids",
        "_peer_ptr",
        "_peer_ids",
        "_peer_tiers",
        "_km",
        "_topology_ref",
        "__weakref__",
    )

    def __init__(self, topology: "Topology"):
        self.version = topology.version
        self.num_nodes = topology.num_nodes
        # Weak: the memo in flat_adjacency() keys on the topology, so a
        # strong back-reference here would make every entry immortal.
        self._topology_ref: "weakref.ref[Topology]" = weakref.ref(topology)
        ids = [node.node_id for node in topology.nodes()]
        self.node_ids = array("i", ids)
        self._row = {node_id: row for row, node_id in enumerate(ids)}
        rs_tier = int(PrefTier.RS_PEER)
        peer_tier = int(PrefTier.PEER)
        prov_ptr = array("i", [0])
        prov_ids = array("i")
        cust_ptr = array("i", [0])
        cust_ids = array("i")
        peer_ptr = array("i", [0])
        peer_ids = array("i")
        peer_tiers = array("b")
        for node_id in ids:
            prov_ids.extend(topology.providers_of(node_id))
            prov_ptr.append(len(prov_ids))
            cust_ids.extend(topology.customers_of(node_id))
            cust_ptr.append(len(cust_ids))
            for neighbor, kind in topology.peers_of(node_id):
                peer_ids.append(neighbor)
                peer_tiers.append(
                    rs_tier if kind is LinkKind.PEER_ROUTE_SERVER else peer_tier
                )
            peer_ptr.append(len(peer_ids))
        self._prov_ptr = prov_ptr
        self._prov_ids = prov_ids
        self._cust_ptr = cust_ptr
        self._cust_ids = cust_ids
        self._peer_ptr = peer_ptr
        self._peer_ids = peer_ids
        self._peer_tiers = peer_tiers
        #: ``(node << 32) | neighbor`` -> exit km; filled lazily (or all
        #: at once by :meth:`precompute_km`).
        self._km: dict[int, float] = {}

    # ------------------------------------------------------------------
    def providers(self, node_id: int) -> array:
        row = self._row[node_id]
        return self._prov_ids[self._prov_ptr[row]:self._prov_ptr[row + 1]]

    def customers(self, node_id: int) -> array:
        row = self._row[node_id]
        return self._cust_ids[self._cust_ptr[row]:self._cust_ptr[row + 1]]

    def peers(self, node_id: int) -> Iterator[tuple[int, int]]:
        """``(neighbor, PrefTier int)`` pairs, adjacency-list order."""
        row = self._row[node_id]
        lo, hi = self._peer_ptr[row], self._peer_ptr[row + 1]
        return zip(self._peer_ids[lo:hi], self._peer_tiers[lo:hi])

    # ------------------------------------------------------------------
    def exit_km(self, node_id: int, neighbor_id: int) -> float:
        """Hot-potato metric: km from the node's nearest PoP to the
        closest interconnect of its link toward ``neighbor_id``.

        Byte-for-byte the same value :class:`repro.routing.engine
        .RoutingEngine` historically computed inline: the same min over
        interconnect x PoP city pairs, rounded to 3 decimals.
        """
        key = (node_id << 32) | neighbor_id
        km = self._km.get(key)
        if km is None:
            topology = self._topology_ref()
            if topology is None:
                raise RuntimeError(
                    "FlatAdjacency outlived its topology; exit-km lookups "
                    "need the source graph (call precompute_km before "
                    "dropping it)"
                )
            link = topology.link_between(node_id, neighbor_id)
            pops = topology.node(node_id).pops
            km = min(
                _pair_km(ic.city.location, pop.city.location)
                for ic in link.interconnects
                for pop in pops
            )
            km = round(km, 3)
            self._km[key] = km
        return km

    def precompute_km(self) -> int:
        """Fill the exit-km memo for every directed link end.

        Called by the parallel plane before forking so workers inherit a
        complete memo copy-on-write instead of each recomputing (and
        privately copying) it.  Returns the memo size.
        """
        topology = self._topology_ref()
        if topology is None:
            return len(self._km)
        for link in topology.links():
            self.exit_km(link.a, link.b)
            self.exit_km(link.b, link.a)
        return len(self._km)


_ADJACENCIES: "weakref.WeakKeyDictionary[Topology, FlatAdjacency]" = (
    weakref.WeakKeyDictionary()
)


def flat_adjacency(topology: "Topology") -> FlatAdjacency:
    """The flat adjacency of a topology, memoized per version.

    Stale entries (the topology mutated since the build) are replaced;
    entries die with their topology (weak keys, and the adjacency holds
    only a weak back-reference).
    """
    adjacency = _ADJACENCIES.get(topology)
    if adjacency is None or adjacency.version != topology.version:
        adjacency = FlatAdjacency(topology)
        _ADJACENCIES[topology] = adjacency  # repro-lint: disable=fork-global-write -- idempotent content-derived memo
    return adjacency
