"""Decision-provenance capture: why each routing/DNS outcome occurred.

``repro.obs`` records *how long* a run took; this module records *why*
it produced the outcome it did.  Three capture points feed it, each
guarded by the same single-``None``-check no-op pattern as
:mod:`repro.obs.recorder` so disabled runs pay nothing:

- :mod:`repro.routing.engine` stores a :class:`SelectionTrail` per node
  per prefix — every candidate route considered, the winning preference
  tier, and the tie-break that picked among equals;
- :mod:`repro.routing.forwarding` stores a :class:`ForwardingTrail` per
  walk — the hot-potato exit chosen at each hop and the alternatives it
  beat;
- :mod:`repro.dnssim.resolver` stores a :class:`DnsDecision` per query —
  the resolver profile, what the authoritative server saw, and the
  region mapping that picked the answer address.

Capture is **off by default**.  Install a recorder with
:func:`capturing` (or :func:`install`) and the same call sites populate
the recorder; :mod:`repro.explain.journey` stitches the records into
end-to-end client journeys, :mod:`repro.explain.diff` attributes
catchment flips to the specific decision that changed.

Records are plain data (ints, strings, tuples) — no routing or topology
objects — so this module imports nothing from the layers it observes
and they can import it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Serialisation schema for explain sections; bump on layout changes.
EXPLAIN_SCHEMA = 1

#: Cap on buffered breadcrumb events; prevents unbounded growth when a
#: capture session spans a large diff.
MAX_EVENTS = 10_000


# ----------------------------------------------------------------------
# Record types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RouteCandidate:
    """One route a node considered for a prefix during selection."""

    #: Node-level path, holder first, origin site last.
    path: tuple[int, ...]
    #: Preference-tier name (``customer`` / ``peer`` / ``rs_peer`` /
    #: ``provider`` / ``origin``), lowercase.
    tier: str
    #: Neighbor the route was learned from (the holder itself at origin).
    via: int
    #: Whether the candidate made the equal-best set.
    accepted: bool
    #: Why it lost (``""`` when accepted): ``lower-tier``,
    #: ``longer-path``, ``not-exported``, ``loop``, ``duplicate-exit``,
    #: ``equal-best-overflow``, ``held-better-tier``.
    reason: str = ""

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "path": list(self.path),
            "tier": self.tier,
            "via": self.via,
            "accepted": self.accepted,
        }
        if self.reason:
            data["reason"] = self.reason
        return data


@dataclass(frozen=True)
class SelectionTrail:
    """The recorded route-selection decision of one node for one prefix."""

    prefix: str
    node_id: int
    #: Engine pass that assigned the route: ``stage1-customer`` /
    #: ``stage2-peer`` / ``stage3-provider`` / ``origin``.
    stage: str
    #: Winning preference-tier name (lowercase).
    winner_tier: str
    #: AS-path length of the winners.
    winner_hops: int
    #: The tie-break that ordered the equal-best set.
    tie_break: str
    candidates: tuple[RouteCandidate, ...]

    @property
    def accepted(self) -> tuple[RouteCandidate, ...]:
        return tuple(c for c in self.candidates if c.accepted)

    @property
    def rejected(self) -> tuple[RouteCandidate, ...]:
        return tuple(c for c in self.candidates if not c.accepted)

    def to_dict(self) -> dict[str, object]:
        return {
            "prefix": self.prefix,
            "node": self.node_id,
            "stage": self.stage,
            "winner_tier": self.winner_tier,
            "winner_hops": self.winner_hops,
            "tie_break": self.tie_break,
            "candidates": [c.to_dict() for c in self.candidates],
        }


@dataclass(frozen=True)
class ExitOption:
    """One equal-best exit considered at a forwarding hop."""

    next_hop: int
    #: IATA code of the interconnect city the exit would cross.
    ic_city: str
    #: Great-circle km from the packet's current location to that city.
    km: float
    chosen: bool

    def to_dict(self) -> dict[str, object]:
        return {
            "next_hop": self.next_hop,
            "ic_city": self.ic_city,
            "km": round(self.km, 1),
            "chosen": self.chosen,
        }


@dataclass(frozen=True)
class ForwardingStep:
    """The hot-potato choice made at one node of a forwarding walk."""

    node_id: int
    options: tuple[ExitOption, ...]

    @property
    def chosen(self) -> ExitOption:
        for option in self.options:
            if option.chosen:
                return option
        raise ValueError("forwarding step has no chosen exit")

    def to_dict(self) -> dict[str, object]:
        return {
            "node": self.node_id,
            "options": [o.to_dict() for o in self.options],
        }


@dataclass(frozen=True)
class ForwardingTrail:
    """Per-hop exit choices of one client walk toward a prefix."""

    prefix: str
    start_node: int
    origin: int
    steps: tuple[ForwardingStep, ...]

    def to_dict(self) -> dict[str, object]:
        return {
            "prefix": self.prefix,
            "start_node": self.start_node,
            "origin": self.origin,
            "steps": [s.to_dict() for s in self.steps],
        }


@dataclass(frozen=True)
class DnsDecision:
    """Why one probe's query got the regional address it did."""

    probe_id: int
    hostname: str
    mode: str
    resolver_addr: str
    resolver_public: bool
    ecs: bool
    #: What the authoritative server saw (address or ECS subnet).
    query_source: str
    #: Country the operator's database mapped the source to (or None).
    mapped_country: str | None
    region: str
    answer: str

    def to_dict(self) -> dict[str, object]:
        return {
            "probe": self.probe_id,
            "hostname": self.hostname,
            "mode": self.mode,
            "resolver_addr": self.resolver_addr,
            "resolver_public": self.resolver_public,
            "ecs": self.ecs,
            "query_source": self.query_source,
            "mapped_country": self.mapped_country,
            "region": self.region,
            "answer": self.answer,
        }


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
class ProvenanceRecorder:
    """Collects decision records for one capture session.

    Trails are keyed by ``(prefix, node)`` — the natural identity of a
    BGP decision.  Forwarding trails use last-write-wins semantics per
    ``(prefix, start_node)``: two probes in the same AS overwrite each
    other, so consumers (the journey builder) read the trail immediately
    after the walk they triggered.
    """

    def __init__(self) -> None:
        #: (prefix, node_id) -> selection trail.
        self.selection: dict[tuple[str, int], SelectionTrail] = {}
        #: (prefix, start_node) -> most recent forwarding trail.
        self.forwarding: dict[tuple[str, int], ForwardingTrail] = {}
        #: (probe_id, hostname, mode) -> most recent DNS decision.
        self.dns: dict[tuple[int, str, str], DnsDecision] = {}
        #: Chronological breadcrumb events ``(name, fields)``.
        self.events: list[tuple[str, dict[str, object]]] = []
        #: Events dropped after :data:`MAX_EVENTS` was reached.
        self.events_dropped = 0

    # -- typed stores ---------------------------------------------------
    def record_selection(self, trail: SelectionTrail) -> None:
        self.selection[(trail.prefix, trail.node_id)] = trail

    def record_forwarding(self, trail: ForwardingTrail) -> None:
        self.forwarding[(trail.prefix, trail.start_node)] = trail

    def record_dns(self, decision: DnsDecision) -> None:
        self.dns[(decision.probe_id, decision.hostname, decision.mode)] = decision

    # -- breadcrumbs ----------------------------------------------------
    def emit(self, name: str, **fields: object) -> None:
        """Append one breadcrumb event (bounded by :data:`MAX_EVENTS`)."""
        if len(self.events) >= MAX_EVENTS:
            self.events_dropped += 1
            return
        self.events.append((name, dict(fields)))

    def event_counts(self) -> dict[str, int]:
        """How many times each breadcrumb event fired, by name."""
        counts: dict[str, int] = {}
        for name, _fields in self.events:
            counts[name] = counts.get(name, 0) + 1
        return counts

    # -- lookups --------------------------------------------------------
    def selection_for(self, prefix: str, node_id: int) -> SelectionTrail | None:
        return self.selection.get((prefix, node_id))

    def forwarding_for(self, prefix: str, start_node: int) -> ForwardingTrail | None:
        return self.forwarding.get((prefix, start_node))

    def dns_for(self, probe_id: int, hostname: str, mode: str) -> DnsDecision | None:
        return self.dns.get((probe_id, hostname, mode))

    def clear(self) -> None:
        self.selection.clear()
        self.forwarding.clear()
        self.dns.clear()
        self.events.clear()
        self.events_dropped = 0

    def __len__(self) -> int:
        return len(self.selection) + len(self.forwarding) + len(self.dns)


#: The process-local recorder; None means capture is disabled.
_CURRENT: ProvenanceRecorder | None = None


def install(recorder: ProvenanceRecorder | None) -> ProvenanceRecorder | None:
    """Make ``recorder`` the process-local recorder (None disables)."""
    global _CURRENT
    _CURRENT = recorder
    return recorder


def uninstall() -> ProvenanceRecorder | None:
    """Remove the installed recorder; returns it."""
    global _CURRENT
    recorder = _CURRENT
    _CURRENT = None
    return recorder


def active() -> ProvenanceRecorder | None:
    """The installed recorder, or None when capture is disabled.

    Hot code fetches this **once** per batch (per route computation, per
    forwarding walk, per query) and guards every capture site with
    ``if prov is not None`` — the disabled path is one global load and a
    ``None`` check, with no per-route allocation.
    """
    return _CURRENT


@contextmanager
def capturing() -> Iterator[ProvenanceRecorder]:
    """Install a fresh recorder for the duration of the block.

    Restores whatever recorder (or None) was installed before, so
    capture sessions nest safely.
    """
    global _CURRENT
    previous = _CURRENT
    recorder = ProvenanceRecorder()
    _CURRENT = recorder
    try:
        yield recorder
    finally:
        _CURRENT = previous


def emit(name: str, **fields: object) -> None:
    """Module-level breadcrumb facade; no-op when capture is disabled.

    Event names must be static dotted-string literals — the
    ``explain-event-literal`` lint rule enforces it, for the same reason
    ``obs-span-literal`` does: downstream tooling groups and counts
    events by name verbatim.
    """
    recorder = _CURRENT
    if recorder is not None:
        recorder.emit(name, **fields)
