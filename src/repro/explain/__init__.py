"""``repro.explain`` — decision provenance for the simulated Internet.

Answers the question the obs layer cannot: *why did this client land at
that site?*  Three layers:

- :mod:`repro.explain.provenance` — capture: optional recording hooks in
  the routing engine (per-AS selection trails), the forwarding walker
  (per-hop exit choices), and the DNS resolver pool (which resolver
  profile / ECS path picked the regional prefix).  Off by default; the
  disabled path is one global load and a ``None`` check.
- :mod:`repro.explain.journey` — stitch: :class:`ClientJourney` composes
  DNS decision → AS-by-AS BGP trail → forwarding walk → landing site for
  any probe.
- :mod:`repro.explain.diff` — attribute: a catchment-diff engine that
  compares two routing worlds (regional vs global, pre/post failure) and
  pins each flipped client on the specific AS decision that changed —
  the mechanised form of the paper's §5.4 case attribution.

Surfaced as ``repro explain client`` / ``diff`` / ``catchment``; journey
and diff sections embed in run manifests and the obs dashboard.

This package intentionally imports nothing heavy: the capture module is
plain data so the routing hot path can import it cycle-free; the stitch
and attribution layers are imported lazily by the CLI.
"""

from repro.explain.provenance import (
    EXPLAIN_SCHEMA,
    DnsDecision,
    ForwardingStep,
    ForwardingTrail,
    ProvenanceRecorder,
    RouteCandidate,
    SelectionTrail,
    active,
    capturing,
    emit,
    install,
    uninstall,
)

__all__ = [
    "EXPLAIN_SCHEMA",
    "DnsDecision",
    "ForwardingStep",
    "ForwardingTrail",
    "ProvenanceRecorder",
    "RouteCandidate",
    "SelectionTrail",
    "active",
    "capturing",
    "emit",
    "install",
    "uninstall",
]
