"""Stitch provenance records into end-to-end client journeys.

A :class:`ClientJourney` answers "why did this client land at that
site?" by composing the three capture layers: the DNS decision that
picked the address, the per-AS BGP selection trail along the realised
path, and the hot-potato forwarding walk to the landing site.

The world's shared routing engine caches tables computed *without*
capture, so :class:`ExplainSession` recomputes them with a fresh engine
while a recorder is installed — the production caches stay untouched and
the session's own per-announcement cache keeps repeat journeys cheap.

Serialised journeys (:meth:`ClientJourney.to_dict`) resolve node names
eagerly, so the renderers work on plain dicts — run manifests and the
obs dashboard can render journeys without a topology in hand.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.explain import provenance
from repro.explain.provenance import (
    EXPLAIN_SCHEMA,
    DnsDecision,
    ForwardingTrail,
    ProvenanceRecorder,
    SelectionTrail,
)

if TYPE_CHECKING:  # heavy layers, imported lazily at runtime
    from repro.experiments.world import World
    from repro.routing.engine import RoutingTable
    from repro.routing.route import Announcement
    from repro.topology.graph import Topology


def node_label(topology: "Topology", node_id: int) -> str:
    """Human-readable label of a topology node (``AS64512(name)``)."""
    return str(topology.node(node_id))


@dataclass(frozen=True)
class ClientJourney:
    """One probe's recorded path to its landing site, end to end."""

    probe_id: int
    #: ``regional`` (geo-DNS picks a regional prefix) or ``global``
    #: (single worldwide anycast address).
    mode: str
    #: The address the client connected to.
    addr: str
    #: The anycast prefix covering that address.
    prefix: str
    #: The DNS decision that produced ``addr``; None for the global
    #: deployment, whose single record involves no geo-DNS decision.
    dns: DnsDecision | None
    #: Selection trails of every AS on the realised path, client first.
    trails: tuple[SelectionTrail, ...]
    forwarding: ForwardingTrail | None
    node_path: tuple[int, ...]
    #: The landing site node (the catchment), None when unreachable.
    origin: int | None
    rtt_ms: float | None
    #: IATA code of the landing site's city.
    dest_city: str | None

    @property
    def reachable(self) -> bool:
        return self.origin is not None

    def to_dict(self, topology: "Topology") -> dict[str, object]:
        """Plain-data form with node names resolved, renderable anywhere."""
        return {
            "schema": EXPLAIN_SCHEMA,
            "probe": self.probe_id,
            "mode": self.mode,
            "addr": self.addr,
            "prefix": self.prefix,
            "dns": self.dns.to_dict() if self.dns is not None else None,
            "trails": [t.to_dict() for t in self.trails],
            "forwarding": (
                self.forwarding.to_dict() if self.forwarding is not None else None
            ),
            "node_path": list(self.node_path),
            "origin": self.origin,
            "rtt_ms": round(self.rtt_ms, 3) if self.rtt_ms is not None else None,
            "dest_city": self.dest_city,
            "names": {
                str(n): node_label(topology, n)
                for n in sorted(set(self.node_path))
            },
        }


class ExplainSession:
    """Provenance-capturing recomputation context over one world.

    Holds its own :class:`ProvenanceRecorder` and a fresh routing engine
    so capture never interferes with (or misses) the world's production
    routing cache.  Tables are cached per announcement within the
    session; all journeys and diffs built from one session share the
    recorder, which is what lets a diff read both worlds' trails.
    """

    def __init__(self, world: "World") -> None:
        from repro.routing.engine import RoutingEngine

        self.world = world
        self.recorder = ProvenanceRecorder()
        self._engine = RoutingEngine(world.engine.routing.topology)
        self._tables: dict["Announcement", "RoutingTable"] = {}

    @property
    def topology(self) -> "Topology":
        return self._engine.topology

    @contextmanager
    def _captured(self) -> Iterator[ProvenanceRecorder]:
        """Install the session recorder, restoring the previous one."""
        previous = provenance.active()
        provenance.install(self.recorder)
        try:
            yield self.recorder
        finally:
            provenance.install(previous)

    def table_for(self, announcement: "Announcement") -> "RoutingTable":
        """Routing table with selection trails captured (session-cached)."""
        table = self._tables.get(announcement)
        if table is None:
            with self._captured():
                table = self._engine.compute(announcement)
            self._tables[announcement] = table
        return table

    def announcement_for(self, addr: object) -> "Announcement":
        """The announcement covering an address or CIDR prefix string."""
        from repro.netaddr.ipv4 import IPv4Address, IPv4Prefix

        if not isinstance(addr, IPv4Address):
            text = str(addr)
            if "/" in text:
                addr = IPv4Prefix.parse(text).address(1)
            else:
                addr = IPv4Address.parse(text)
        announcement = self.world.engine.registry.lookup(addr)
        if announcement is None:
            raise ValueError(f"no announcement covers {addr}")
        return announcement

    # ------------------------------------------------------------------
    def journey(self, probe_id: int, mode: str = "regional") -> ClientJourney:
        """Build the full journey of one probe under one deployment.

        ``mode`` is ``regional`` (the world's geo-DNS service picks a
        regional prefix, recorded as a :class:`DnsDecision`) or
        ``global`` (the single global anycast address).
        """
        from repro.dnssim.resolver import DnsMode
        from repro.routing.forwarding import trace_forwarding_path

        probe = self.world.probe_by_id.get(probe_id)
        if probe is None:
            raise ValueError(f"unknown or unusable probe {probe_id}")
        dns: DnsDecision | None = None
        if mode == "regional":
            service = self.world.im6_service
            with self._captured() as rec:
                addr = self.world.resolvers.resolve(service, probe, DnsMode.LDNS)
            dns = rec.dns_for(probe_id, service.hostname, DnsMode.LDNS.value)
        elif mode == "global":
            addr = self.world.imperva.ns.address
        else:
            raise ValueError(f"mode must be 'regional' or 'global': {mode!r}")
        announcement = self.announcement_for(addr)
        table = self.table_for(announcement)
        prefix = str(announcement.prefix)
        with self._captured() as rec:
            path = trace_forwarding_path(
                self.topology, table, probe.as_node,
                probe.location, probe.last_mile_ms,
            )
        if path is None:
            return ClientJourney(
                probe_id=probe_id, mode=mode, addr=str(addr), prefix=prefix,
                dns=dns, trails=(), forwarding=None,
                node_path=(probe.as_node,), origin=None, rtt_ms=None,
                dest_city=None,
            )
        # Forwarding trails are last-write-wins per (prefix, start AS):
        # read back immediately, while this walk is the latest.
        forwarding = rec.forwarding_for(prefix, probe.as_node)
        trails = tuple(
            t for n in path.node_path
            if (t := rec.selection_for(prefix, n)) is not None
        )
        return ClientJourney(
            probe_id=probe_id, mode=mode, addr=str(addr), prefix=prefix,
            dns=dns, trails=trails, forwarding=forwarding,
            node_path=path.node_path, origin=path.origin,
            rtt_ms=path.rtt_ms, dest_city=path.dest_city.iata,
        )


# ----------------------------------------------------------------------
# Rendering (dict-based: works on manifest payloads without a topology)
# ----------------------------------------------------------------------
def _render_dns(dns: dict[str, object] | None, addr: object) -> list[str]:
    if dns is None:
        return [
            f"DNS: single global anycast address — every query answers {addr}",
        ]
    kind = "public" if dns.get("resolver_public") else "ISP"
    ecs = "with ECS" if dns.get("ecs") else "no ECS"
    country = dns.get("mapped_country") or "unmapped"
    return [
        f"DNS ({dns.get('mode')}): resolver {dns.get('resolver_addr')} "
        f"({kind}, {ecs}) -> authoritative saw {dns.get('query_source')} "
        f"-> country {country} -> region {dns.get('region')} "
        f"-> {dns.get('answer')}",
    ]


def _candidate_note(candidates: list[dict[str, object]]) -> str:
    rejected = [c for c in candidates if not c.get("accepted")]
    accepted = len(candidates) - len(rejected)
    if not rejected:
        return f"{accepted} candidate(s)"
    reasons: dict[str, int] = {}
    for c in rejected:
        reason = str(c.get("reason", "?"))
        reasons[reason] = reasons.get(reason, 0) + 1
    detail = ", ".join(f"{n}x {r}" for r, n in sorted(reasons.items()))
    return f"{accepted} accepted, {len(rejected)} rejected ({detail})"


def render_journey_dict(data: dict[str, object]) -> str:
    """Render one serialised journey as the looking-glass style report."""
    names = data.get("names") or {}
    assert isinstance(names, dict)

    def label(node: object) -> str:
        return str(names.get(str(node), f"node {node}"))

    lines = [
        f"== journey: probe {data.get('probe')} -> {data.get('addr')} "
        f"({data.get('mode')}) ==",
    ]
    lines.extend(_render_dns(data.get("dns"), data.get("addr")))  # type: ignore[arg-type]
    if data.get("origin") is None:
        lines.append("client AS holds no route: unreachable")
        return "\n".join(lines)
    lines.append(f"BGP trail (prefix {data.get('prefix')}):")
    trails = data.get("trails") or []
    assert isinstance(trails, list)
    for trail in trails:
        candidates = trail.get("candidates") or []
        lines.append(
            f"  {label(trail.get('node'))}: {trail.get('winner_tier')} route, "
            f"{trail.get('winner_hops')} hop(s) [{trail.get('stage')}; "
            f"{_candidate_note(candidates)}]"
        )
        if len(candidates) > 1:
            lines.append(f"    tie-break: {trail.get('tie_break')}")
    forwarding = data.get("forwarding")
    if isinstance(forwarding, dict):
        lines.append("Forwarding (hot-potato per hop):")
        steps = forwarding.get("steps") or []
        assert isinstance(steps, list)
        for step in steps:
            options = step.get("options") or []
            chosen = next((o for o in options if o.get("chosen")), None)
            if chosen is None:  # pragma: no cover - trails always have one
                continue
            alts = len(options) - 1
            alt_note = f", over {alts} alternative(s)" if alts else ""
            lines.append(
                f"  {label(step.get('node'))} exits via "
                f"{label(chosen.get('next_hop'))} at {chosen.get('ic_city')} "
                f"({chosen.get('km')} km{alt_note})"
            )
    rtt = data.get("rtt_ms")
    lines.append(
        f"Landing: {label(data.get('origin'))} in {data.get('dest_city')}"
        + (f", rtt {rtt} ms" if rtt is not None else "")
    )
    return "\n".join(lines)


def render_journey(journey: ClientJourney, topology: "Topology") -> str:
    return render_journey_dict(journey.to_dict(topology))
