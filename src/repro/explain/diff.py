"""Catchment diffing: attribute each flipped client to a BGP decision.

Compares the realised catchments of two announcements (regional prefix
vs global prefix, or pre/post a topology change) and, for every client
whose landing site flipped, walks both forwarding paths to the *pivot* —
the last AS the paths share — and reads that AS's recorded selection
trails from both tables.  The pair of winning preference tiers names the
decision that changed:

- ``prefer-customer`` — one world's pivot held a *customer* route the
  other world's prefix never reached (absent from the customer cone), so
  the pivot fell back to a peer/provider route toward a different site.
  This is the paper's §5.4 *AS-relationship override* (44.1% of improved
  cases), read from ground truth instead of inferred from traceroutes.
- ``prefer-public-peer`` — public peer vs route-server route (§5.4
  *peering-type override*, 1.6%).
- ``prefer-peer`` — peer route in one world, provider fallback in the
  other: the same Gao-Rexford preference one rung down.
- ``hot-potato`` — same tier and path length; only the geographic
  equal-best exit differed.
- ``shorter-path`` — same tier, different AS-path length.
- ``unknown`` — trails missing or a tier pair outside the taxonomy.

Unlike :mod:`repro.analysis.cases`, which deliberately plays by an
analyst's rules (traceroute-visible hops only, published route-server
feeds only), this reads the simulator's recorded decisions — its
*unknown* bucket should therefore be strictly smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.explain.provenance import EXPLAIN_SCHEMA, SelectionTrail

if TYPE_CHECKING:
    from repro.explain.journey import ExplainSession
    from repro.routing.route import Announcement
    from repro.topology.graph import Topology

#: Attribution cases, in render order.
CASES = (
    "prefer-customer",
    "prefer-public-peer",
    "prefer-peer",
    "hot-potato",
    "shorter-path",
    "unknown",
)

#: How explain cases map onto the §5.4 bucket names of
#: :class:`repro.analysis.cases.CaseType` (cases without a paper bucket
#: fold into *unknown* there).
SEC54_BUCKET = {
    "prefer-customer": "as-relationship-override",
    "prefer-public-peer": "peering-type-override",
}


@dataclass(frozen=True)
class FlipAttribution:
    """Why one client's landing site differs between two tables."""

    probe_id: int
    #: Last AS shared by both forwarding paths — where they diverge.
    pivot: int
    origin_a: int
    origin_b: int
    #: One of :data:`CASES`.
    case: str
    #: Winning tier at the pivot in table A / table B.
    tier_a: str
    tier_b: str
    detail: str

    def to_dict(self) -> dict[str, object]:
        return {
            "probe": self.probe_id,
            "pivot": self.pivot,
            "origin_a": self.origin_a,
            "origin_b": self.origin_b,
            "case": self.case,
            "tier_a": self.tier_a,
            "tier_b": self.tier_b,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class CatchmentDiff:
    """Aggregate of a two-table catchment comparison."""

    label_a: str
    label_b: str
    prefix_a: str
    prefix_b: str
    #: Probes compared (reachable in both tables).
    total: int
    unreachable: int
    flips: tuple[FlipAttribution, ...]

    def counts(self) -> dict[str, int]:
        counts = {case: 0 for case in CASES}
        for flip in self.flips:
            counts[flip.case] += 1
        return counts

    def flips_of(self, case: str) -> tuple[FlipAttribution, ...]:
        return tuple(f for f in self.flips if f.case == case)

    def to_dict(self, topology: "Topology") -> dict[str, object]:
        from repro.explain.journey import node_label

        nodes = {f.pivot for f in self.flips}
        nodes.update(f.origin_a for f in self.flips)
        nodes.update(f.origin_b for f in self.flips)
        return {
            "schema": EXPLAIN_SCHEMA,
            "label_a": self.label_a,
            "label_b": self.label_b,
            "prefix_a": self.prefix_a,
            "prefix_b": self.prefix_b,
            "total": self.total,
            "unreachable": self.unreachable,
            "counts": self.counts(),
            "flips": [f.to_dict() for f in self.flips],
            "names": {str(n): node_label(topology, n) for n in sorted(nodes)},
        }


def _tier_pair_case(tier_a: str, tier_b: str, hops_a: int, hops_b: int) -> str:
    """Name the decision change behind a (tier_a, tier_b) pivot pair."""
    tiers = {tier_a, tier_b}
    if "customer" in tiers and tiers & {"peer", "rs_peer", "provider"}:
        return "prefer-customer"
    if tiers == {"peer", "rs_peer"}:
        return "prefer-public-peer"
    if "provider" in tiers and tiers & {"peer", "rs_peer"}:
        return "prefer-peer"
    if tier_a == tier_b:
        return "hot-potato" if hops_a == hops_b else "shorter-path"
    return "unknown"


def attribute_flip(
    probe_id: int,
    path_a: tuple[int, ...],
    path_b: tuple[int, ...],
    trail_a_of: dict[int, SelectionTrail],
    trail_b_of: dict[int, SelectionTrail],
) -> FlipAttribution:
    """Attribute one flipped client to the decision at the pivot AS.

    ``trail_*_of`` map node id to that table's recorded selection trail
    (see :meth:`ExplainSession.table_for`, which fills them).
    """
    idx = 0
    while idx < len(path_a) and idx < len(path_b) and path_a[idx] == path_b[idx]:
        idx += 1
    pivot = path_a[idx - 1] if idx > 0 else path_a[0]
    trail_a = trail_a_of.get(pivot)
    trail_b = trail_b_of.get(pivot)
    if trail_a is None or trail_b is None:
        return FlipAttribution(
            probe_id=probe_id, pivot=pivot,
            origin_a=path_a[-1], origin_b=path_b[-1],
            case="unknown", tier_a="?", tier_b="?",
            detail="no selection trail recorded at the pivot",
        )
    case = _tier_pair_case(
        trail_a.winner_tier, trail_b.winner_tier,
        trail_a.winner_hops, trail_b.winner_hops,
    )
    detail = (
        f"pivot held a {trail_a.winner_tier} route "
        f"({trail_a.winner_hops} hops) vs a {trail_b.winner_tier} route "
        f"({trail_b.winner_hops} hops)"
    )
    return FlipAttribution(
        probe_id=probe_id, pivot=pivot,
        origin_a=path_a[-1], origin_b=path_b[-1],
        case=case, tier_a=trail_a.winner_tier, tier_b=trail_b.winner_tier,
        detail=detail,
    )


def diff_catchments(
    session: "ExplainSession",
    announcement_a: "Announcement",
    announcement_b: "Announcement",
    label_a: str = "a",
    label_b: str = "b",
    probe_ids: list[int] | None = None,
) -> CatchmentDiff:
    """Compare realised catchments of two announcements, probe by probe.

    Both tables are computed with capture on, so every flip can be read
    back against the pivot's recorded decisions in both worlds.
    """
    from repro.routing.forwarding import trace_forwarding_path

    world = session.world
    table_a = session.table_for(announcement_a)
    table_b = session.table_for(announcement_b)
    prefix_a = str(announcement_a.prefix)
    prefix_b = str(announcement_b.prefix)
    trail_a_of = {
        node: trail
        for (prefix, node), trail in session.recorder.selection.items()
        if prefix == prefix_a
    }
    trail_b_of = {
        node: trail
        for (prefix, node), trail in session.recorder.selection.items()
        if prefix == prefix_b
    }
    probes = (
        world.usable_probes
        if probe_ids is None
        else [world.probe_by_id[pid] for pid in probe_ids]
    )
    total = 0
    unreachable = 0
    flips: list[FlipAttribution] = []
    for probe in probes:
        path_a = trace_forwarding_path(
            session.topology, table_a, probe.as_node,
            probe.location, probe.last_mile_ms,
        )
        path_b = trace_forwarding_path(
            session.topology, table_b, probe.as_node,
            probe.location, probe.last_mile_ms,
        )
        if path_a is None or path_b is None:
            unreachable += 1
            continue
        total += 1
        if path_a.origin == path_b.origin:
            continue
        flips.append(attribute_flip(
            probe.probe_id, path_a.node_path, path_b.node_path,
            trail_a_of, trail_b_of,
        ))
    return CatchmentDiff(
        label_a=label_a, label_b=label_b,
        prefix_a=prefix_a, prefix_b=prefix_b,
        total=total, unreachable=unreachable, flips=tuple(flips),
    )


def diff_regional_vs_global(
    session: "ExplainSession",
    probe_ids: list[int] | None = None,
) -> CatchmentDiff:
    """§5.4-style diff: global deployment vs each client's regional prefix.

    Probes are grouped by the regional address their (LDNS) DNS query
    resolved to; each group is diffed against the global announcement and
    the results are merged.  A flip here is a client whose landing site
    under regional anycast differs from its global-anycast catchment —
    the population §5.4 attributes.
    """
    from repro.dnssim.resolver import DnsMode

    world = session.world
    global_ann = session.announcement_for(world.imperva.ns.address)
    answers = world.resolve_all(world.im6_service, DnsMode.LDNS)
    wanted = set(probe_ids) if probe_ids is not None else None
    by_addr: dict[object, list[int]] = {}
    for pid, addr in sorted(answers.items()):
        if wanted is not None and pid not in wanted:
            continue
        by_addr.setdefault(addr, []).append(pid)
    total = 0
    unreachable = 0
    flips: list[FlipAttribution] = []
    prefixes: list[str] = []
    for addr in sorted(by_addr, key=str):
        regional_ann = session.announcement_for(addr)
        part = diff_catchments(
            session, global_ann, regional_ann,
            label_a="global", label_b="regional",
            probe_ids=by_addr[addr],
        )
        total += part.total
        unreachable += part.unreachable
        flips.extend(part.flips)
        if part.prefix_b not in prefixes:
            prefixes.append(part.prefix_b)
    return CatchmentDiff(
        label_a="global", label_b="regional (per-client)",
        prefix_a=str(global_ann.prefix), prefix_b=", ".join(prefixes),
        total=total, unreachable=unreachable, flips=tuple(flips),
    )


def render_diff_dict(data: dict[str, object], max_examples: int = 3) -> str:
    """Render a serialised diff: per-case counts plus example flips."""
    names = data.get("names") or {}
    assert isinstance(names, dict)

    def label(node: object) -> str:
        return str(names.get(str(node), f"node {node}"))

    lines = [
        f"== catchment diff: {data.get('label_a')} ({data.get('prefix_a')}) "
        f"vs {data.get('label_b')} ({data.get('prefix_b')}) ==",
        f"probes compared: {data.get('total')} "
        f"(unreachable skipped: {data.get('unreachable')})",
    ]
    flips = data.get("flips") or []
    assert isinstance(flips, list)
    counts = data.get("counts") or {}
    assert isinstance(counts, dict)
    lines.append(f"flipped clients: {len(flips)}")
    for case in CASES:
        n = counts.get(case, 0)
        if not n:
            continue
        bucket = SEC54_BUCKET.get(case)
        note = f" [sec5.4: {bucket}]" if bucket else ""
        lines.append(f"  {case}: {n}{note}")
        shown = [f for f in flips if f.get("case") == case][:max_examples]
        for flip in shown:
            lines.append(
                f"    probe {flip.get('probe')}: pivot {label(flip.get('pivot'))} "
                f"{flip.get('tier_a')}->{flip.get('tier_b')}, "
                f"{label(flip.get('origin_a'))} -> {label(flip.get('origin_b'))}"
            )
    return "\n".join(lines)


def render_diff(diff: CatchmentDiff, topology: "Topology") -> str:
    return render_diff_dict(diff.to_dict(topology))
