"""Country metadata: ISO-3166 alpha-2 codes, names, and continents.

The simulator needs country-level knowledge in three places:

- DNS geo-mapping policies operate at country (or continent) granularity
  (§4.3, §6.2 — Amazon Route 53 supports both levels);
- probe areas (EMEA / NA / LatAm / APAC) are derived from probe countries;
- the Appendix-B "country-level IPGeo" technique resolves a p-hop when all
  geolocation databases agree on its country and the CDN lists one site there.

The table below covers every country that hosts a city in the embedded world
atlas plus the neighbouring countries used by the probe population generator.
It is intentionally a plain dictionary: deterministic, dependency-free, and
easy to audit.
"""

from __future__ import annotations

import enum
from typing import Iterator


class Continent(enum.Enum):
    """Standard continent codes used by geolocation databases."""

    AFRICA = "AF"
    ASIA = "AS"
    EUROPE = "EU"
    NORTH_AMERICA = "NA"
    OCEANIA = "OC"
    SOUTH_AMERICA = "SA"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All continents, in stable order.
CONTINENTS: tuple[Continent, ...] = tuple(Continent)

# code -> (name, continent)
_COUNTRIES: dict[str, tuple[str, Continent]] = {
    # --- North America ------------------------------------------------
    "US": ("United States", Continent.NORTH_AMERICA),
    "CA": ("Canada", Continent.NORTH_AMERICA),
    "MX": ("Mexico", Continent.NORTH_AMERICA),
    "GT": ("Guatemala", Continent.NORTH_AMERICA),
    "HN": ("Honduras", Continent.NORTH_AMERICA),
    "SV": ("El Salvador", Continent.NORTH_AMERICA),
    "NI": ("Nicaragua", Continent.NORTH_AMERICA),
    "CR": ("Costa Rica", Continent.NORTH_AMERICA),
    "PA": ("Panama", Continent.NORTH_AMERICA),
    "BZ": ("Belize", Continent.NORTH_AMERICA),
    "CU": ("Cuba", Continent.NORTH_AMERICA),
    "DO": ("Dominican Republic", Continent.NORTH_AMERICA),
    "JM": ("Jamaica", Continent.NORTH_AMERICA),
    "HT": ("Haiti", Continent.NORTH_AMERICA),
    "PR": ("Puerto Rico", Continent.NORTH_AMERICA),
    "TT": ("Trinidad and Tobago", Continent.NORTH_AMERICA),
    "BS": ("Bahamas", Continent.NORTH_AMERICA),
    # --- South America ------------------------------------------------
    "BR": ("Brazil", Continent.SOUTH_AMERICA),
    "AR": ("Argentina", Continent.SOUTH_AMERICA),
    "CL": ("Chile", Continent.SOUTH_AMERICA),
    "CO": ("Colombia", Continent.SOUTH_AMERICA),
    "PE": ("Peru", Continent.SOUTH_AMERICA),
    "VE": ("Venezuela", Continent.SOUTH_AMERICA),
    "EC": ("Ecuador", Continent.SOUTH_AMERICA),
    "UY": ("Uruguay", Continent.SOUTH_AMERICA),
    "PY": ("Paraguay", Continent.SOUTH_AMERICA),
    "BO": ("Bolivia", Continent.SOUTH_AMERICA),
    "GY": ("Guyana", Continent.SOUTH_AMERICA),
    "SR": ("Suriname", Continent.SOUTH_AMERICA),
    # --- Europe ---------------------------------------------------------
    "GB": ("United Kingdom", Continent.EUROPE),
    "DE": ("Germany", Continent.EUROPE),
    "FR": ("France", Continent.EUROPE),
    "NL": ("Netherlands", Continent.EUROPE),
    "BE": ("Belgium", Continent.EUROPE),
    "LU": ("Luxembourg", Continent.EUROPE),
    "IE": ("Ireland", Continent.EUROPE),
    "ES": ("Spain", Continent.EUROPE),
    "PT": ("Portugal", Continent.EUROPE),
    "IT": ("Italy", Continent.EUROPE),
    "CH": ("Switzerland", Continent.EUROPE),
    "AT": ("Austria", Continent.EUROPE),
    "DK": ("Denmark", Continent.EUROPE),
    "SE": ("Sweden", Continent.EUROPE),
    "NO": ("Norway", Continent.EUROPE),
    "FI": ("Finland", Continent.EUROPE),
    "IS": ("Iceland", Continent.EUROPE),
    "PL": ("Poland", Continent.EUROPE),
    "CZ": ("Czechia", Continent.EUROPE),
    "SK": ("Slovakia", Continent.EUROPE),
    "HU": ("Hungary", Continent.EUROPE),
    "RO": ("Romania", Continent.EUROPE),
    "BG": ("Bulgaria", Continent.EUROPE),
    "GR": ("Greece", Continent.EUROPE),
    "HR": ("Croatia", Continent.EUROPE),
    "SI": ("Slovenia", Continent.EUROPE),
    "RS": ("Serbia", Continent.EUROPE),
    "BA": ("Bosnia and Herzegovina", Continent.EUROPE),
    "AL": ("Albania", Continent.EUROPE),
    "MK": ("North Macedonia", Continent.EUROPE),
    "EE": ("Estonia", Continent.EUROPE),
    "LV": ("Latvia", Continent.EUROPE),
    "LT": ("Lithuania", Continent.EUROPE),
    "UA": ("Ukraine", Continent.EUROPE),
    "BY": ("Belarus", Continent.EUROPE),
    "MD": ("Moldova", Continent.EUROPE),
    "RU": ("Russia", Continent.EUROPE),
    "MT": ("Malta", Continent.EUROPE),
    "CY": ("Cyprus", Continent.EUROPE),
    # --- Middle East (continent AS, area EMEA) ---------------------------
    "TR": ("Turkey", Continent.ASIA),
    "IL": ("Israel", Continent.ASIA),
    "SA": ("Saudi Arabia", Continent.ASIA),
    "AE": ("United Arab Emirates", Continent.ASIA),
    "QA": ("Qatar", Continent.ASIA),
    "KW": ("Kuwait", Continent.ASIA),
    "BH": ("Bahrain", Continent.ASIA),
    "OM": ("Oman", Continent.ASIA),
    "JO": ("Jordan", Continent.ASIA),
    "LB": ("Lebanon", Continent.ASIA),
    "IQ": ("Iraq", Continent.ASIA),
    "IR": ("Iran", Continent.ASIA),
    "GE": ("Georgia", Continent.ASIA),
    "AM": ("Armenia", Continent.ASIA),
    "AZ": ("Azerbaijan", Continent.ASIA),
    # --- Africa ----------------------------------------------------------
    "ZA": ("South Africa", Continent.AFRICA),
    "EG": ("Egypt", Continent.AFRICA),
    "NG": ("Nigeria", Continent.AFRICA),
    "KE": ("Kenya", Continent.AFRICA),
    "MA": ("Morocco", Continent.AFRICA),
    "TN": ("Tunisia", Continent.AFRICA),
    "DZ": ("Algeria", Continent.AFRICA),
    "GH": ("Ghana", Continent.AFRICA),
    "SN": ("Senegal", Continent.AFRICA),
    "CI": ("Ivory Coast", Continent.AFRICA),
    "ET": ("Ethiopia", Continent.AFRICA),
    "TZ": ("Tanzania", Continent.AFRICA),
    "UG": ("Uganda", Continent.AFRICA),
    "AO": ("Angola", Continent.AFRICA),
    "MU": ("Mauritius", Continent.AFRICA),
    "ZW": ("Zimbabwe", Continent.AFRICA),
    "MZ": ("Mozambique", Continent.AFRICA),
    "CM": ("Cameroon", Continent.AFRICA),
    "RW": ("Rwanda", Continent.AFRICA),
    # --- Asia-Pacific ------------------------------------------------------
    "CN": ("China", Continent.ASIA),
    "JP": ("Japan", Continent.ASIA),
    "KR": ("South Korea", Continent.ASIA),
    "TW": ("Taiwan", Continent.ASIA),
    "HK": ("Hong Kong", Continent.ASIA),
    "MO": ("Macao", Continent.ASIA),
    "SG": ("Singapore", Continent.ASIA),
    "MY": ("Malaysia", Continent.ASIA),
    "TH": ("Thailand", Continent.ASIA),
    "VN": ("Vietnam", Continent.ASIA),
    "PH": ("Philippines", Continent.ASIA),
    "ID": ("Indonesia", Continent.ASIA),
    "IN": ("India", Continent.ASIA),
    "PK": ("Pakistan", Continent.ASIA),
    "BD": ("Bangladesh", Continent.ASIA),
    "LK": ("Sri Lanka", Continent.ASIA),
    "NP": ("Nepal", Continent.ASIA),
    "KH": ("Cambodia", Continent.ASIA),
    "MM": ("Myanmar", Continent.ASIA),
    "LA": ("Laos", Continent.ASIA),
    "MN": ("Mongolia", Continent.ASIA),
    "KZ": ("Kazakhstan", Continent.ASIA),
    "UZ": ("Uzbekistan", Continent.ASIA),
    "KG": ("Kyrgyzstan", Continent.ASIA),
    "BN": ("Brunei", Continent.ASIA),
    # --- Oceania -----------------------------------------------------------
    "AU": ("Australia", Continent.OCEANIA),
    "NZ": ("New Zealand", Continent.OCEANIA),
    "FJ": ("Fiji", Continent.OCEANIA),
    "PG": ("Papua New Guinea", Continent.OCEANIA),
    "NC": ("New Caledonia", Continent.OCEANIA),
}

#: Middle-East countries, grouped into the EMEA probe area by the paper.
MIDDLE_EAST: frozenset[str] = frozenset(
    {
        "TR", "IL", "SA", "AE", "QA", "KW", "BH", "OM", "JO", "LB", "IQ",
        "IR", "GE", "AM", "AZ", "CY",
    }
)


def is_country(code: str) -> bool:
    """Whether ``code`` is a known ISO alpha-2 country code."""
    return code in _COUNTRIES


def country_name(code: str) -> str:
    """Human-readable name of a country code.

    Raises :class:`KeyError` with a helpful message for unknown codes so a
    typo in an experiment configuration fails loudly.
    """
    try:
        return _COUNTRIES[code][0]
    except KeyError:
        raise KeyError(f"unknown country code: {code!r}") from None


def continent_of(code: str) -> Continent:
    """The continent a country belongs to."""
    try:
        return _COUNTRIES[code][1]
    except KeyError:
        raise KeyError(f"unknown country code: {code!r}") from None


def iter_countries() -> Iterator[str]:
    """Iterate over all known country codes, in stable definition order."""
    return iter(_COUNTRIES)


def countries_in(continent: Continent) -> list[str]:
    """All known country codes on a given continent, in stable order."""
    return [code for code, (_, cont) in _COUNTRIES.items() if cont is continent]
