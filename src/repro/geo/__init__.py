"""Geographic substrate: coordinates, distance, latency, and the world atlas.

This package provides everything the simulator needs to reason about *where*
network elements are:

- :mod:`repro.geo.coords` — latitude/longitude points, great-circle distance,
  and the fiber propagation-latency model used throughout the paper
  ("roughly 100 km per 1 ms RTT").
- :mod:`repro.geo.atlas` — an embedded world atlas of major cities with IATA
  codes, countries, and continents, standing in for the IATA airport
  directory the paper uses to assign ``<city, AS>`` group city codes.
- :mod:`repro.geo.countries` — country → continent tables and the country
  metadata needed for country-level DNS geo-mapping.
- :mod:`repro.geo.areas` — the paper's four probe areas (EMEA / NA / LatAm /
  APAC, §3.1) and the classification rule mapping a location to its area.
"""

from repro.geo.areas import Area, area_of_country
from repro.geo.atlas import City, WorldAtlas, load_default_atlas
from repro.geo.coords import (
    EARTH_RADIUS_KM,
    FIBER_KM_PER_MS_RTT,
    GeoPoint,
    great_circle_km,
    min_rtt_ms,
    propagation_delay_ms,
)
from repro.geo.countries import (
    CONTINENTS,
    Continent,
    continent_of,
    country_name,
    iter_countries,
)

__all__ = [
    "Area",
    "City",
    "CONTINENTS",
    "Continent",
    "EARTH_RADIUS_KM",
    "FIBER_KM_PER_MS_RTT",
    "GeoPoint",
    "WorldAtlas",
    "area_of_country",
    "continent_of",
    "country_name",
    "great_circle_km",
    "iter_countries",
    "load_default_atlas",
    "min_rtt_ms",
    "propagation_delay_ms",
]
