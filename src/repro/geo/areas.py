"""The paper's four probe areas (§3.1) and the classification rule.

RIPE Atlas probes are unevenly distributed, so the paper reports every
statistic separately for four areas defined by probe density:

- **EMEA** — Europe, the Middle East, and Africa;
- **NA** — North America excluding Central America;
- **LatAm** — South America plus Central America (and the Caribbean);
- **APAC** — the rest of the globe.

The paper stresses that this split is a property of *probe locations* and is
independent of any CDN's region partition; we keep that separation here —
CDN regions live in :mod:`repro.cdn`, probe areas live here.
"""

from __future__ import annotations

import enum

from repro.geo.countries import MIDDLE_EAST, Continent, continent_of


class Area(enum.Enum):
    """One of the paper's four reporting areas."""

    EMEA = "EMEA"
    NA = "NA"
    LATAM = "LatAm"
    APAC = "APAC"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: All areas in the order the paper's tables list them.
AREAS: tuple[Area, ...] = (Area.APAC, Area.EMEA, Area.NA, Area.LATAM)

#: Countries in continent-NA that the paper keeps in its "NA" area
#: ("North America, excluding countries in Central America").
_NA_AREA_COUNTRIES = frozenset({"US", "CA"})


def area_of_country(country: str) -> Area:
    """Classify a country into the paper's four probe areas.

    Mirrors §3.1: Russia counts as EMEA (its probes appear in the paper's
    EMEA statistics), Mexico / Central America / the Caribbean count as
    LatAm, and everything that is neither EMEA, NA, nor LatAm is APAC.
    """
    continent = continent_of(country)
    if continent in (Continent.EUROPE, Continent.AFRICA):
        return Area.EMEA
    if country in MIDDLE_EAST:
        return Area.EMEA
    if continent is Continent.NORTH_AMERICA:
        return Area.NA if country in _NA_AREA_COUNTRIES else Area.LATAM
    if continent is Continent.SOUTH_AMERICA:
        return Area.LATAM
    # Remaining: Asia (non-Middle-East) and Oceania.
    return Area.APAC
