"""Coordinates, great-circle distance, and the fiber latency model.

The paper calibrates RTT-to-distance with the rule of thumb that "the
speed-of-light latency in fiber is roughly 100 km per 1 ms RTT" (§4.4,
Appendix B).  We adopt exactly that constant so distance thresholds in the
reproduction (e.g. the 1.5 ms RTT-range geolocation threshold) carry the
same physical meaning as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Mean Earth radius in kilometres (IUGG value, rounded).
EARTH_RADIUS_KM = 6371.0

#: Kilometres of fiber covered per millisecond of *round-trip* time.
#: This is the paper's calibration: ~100 km per 1 ms RTT, i.e. ~200 km of
#: one-way propagation per millisecond of RTT divided by the path stretch.
FIBER_KM_PER_MS_RTT = 100.0


@dataclass(frozen=True)
class GeoPoint:
    """A point on the Earth's surface, in decimal degrees.

    Latitude is positive north, longitude positive east.  The class is
    hashable and immutable so it can be used as a dictionary key (e.g. when
    deduplicating PoPs in the same city).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat!r}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon!r}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return great_circle_km(self, other)

    def rtt_ms(self, other: "GeoPoint") -> float:
        """Speed-of-light-in-fiber round-trip time to ``other``."""
        return min_rtt_ms(great_circle_km(self, other))

    def unit_vector(self) -> tuple[float, float, float]:
        """The point as a 3-D unit vector (used by spherical K-Means)."""
        lat_r = math.radians(self.lat)
        lon_r = math.radians(self.lon)
        cos_lat = math.cos(lat_r)
        return (cos_lat * math.cos(lon_r), cos_lat * math.sin(lon_r), math.sin(lat_r))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"{abs(self.lat):.2f}{ns},{abs(self.lon):.2f}{ew}"


def great_circle_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, via the haversine formula.

    The haversine formulation is numerically stable for both antipodal and
    nearly-identical points, which matters because the simulator frequently
    measures distances between co-located elements (probe and on-site
    router) as well as transoceanic paths.
    """
    if a == b:
        return 0.0
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    # Guard against floating error pushing h epsilon above 1.
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def min_rtt_ms(distance_km: float) -> float:
    """The physical lower bound on RTT for a given fiber distance.

    Uses the paper's 100 km-per-ms-RTT calibration.
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km!r}")
    return distance_km / FIBER_KM_PER_MS_RTT


def propagation_delay_ms(a: GeoPoint, b: GeoPoint) -> float:
    """One-way propagation delay between two points, in milliseconds.

    One-way delay is half the round-trip lower bound; paths in the simulator
    are symmetric, so ``2 * propagation_delay_ms(a, b) == a.rtt_ms(b)``.
    """
    return min_rtt_ms(great_circle_km(a, b)) / 2.0


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Spherical midpoint of two points (used for synthetic link routers)."""
    ax, ay, az = a.unit_vector()
    bx, by, bz = b.unit_vector()
    mx, my, mz = ax + bx, ay + by, az + bz
    norm = math.sqrt(mx * mx + my * my + mz * mz)
    if norm < 1e-12:
        # Antipodal points: midpoint is undefined; pick the first point's
        # meridian crossing as a deterministic fallback.
        return GeoPoint(0.0, a.lon)
    mx, my, mz = mx / norm, my / norm, mz / norm
    lat = math.degrees(math.asin(max(-1.0, min(1.0, mz))))
    lon = math.degrees(math.atan2(my, mx))
    return GeoPoint(lat, lon)


def centroid(points: list[GeoPoint]) -> GeoPoint:
    """Spherical centroid of a list of points.

    Used by the ReOpt K-Means partitioner (§6.1) when recomputing cluster
    centres from site coordinates.
    """
    if not points:
        raise ValueError("centroid of empty point list is undefined")
    sx = sy = sz = 0.0
    for p in points:
        x, y, z = p.unit_vector()
        sx += x
        sy += y
        sz += z
    norm = math.sqrt(sx * sx + sy * sy + sz * sz)
    if norm < 1e-12:
        return GeoPoint(0.0, 0.0)
    sx, sy, sz = sx / norm, sy / norm, sz / norm
    lat = math.degrees(math.asin(max(-1.0, min(1.0, sz))))
    lon = math.degrees(math.atan2(sy, sx))
    return GeoPoint(lat, lon)
