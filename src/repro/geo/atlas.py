"""Embedded world atlas: major cities with IATA codes.

The paper maps each RIPE Atlas probe to "its closest airport within the same
country" and uses the airport's IATA code as the probe's city code (§3.1).
CDN PoP lists are also published at city granularity, and rDNS geo-hints
embed IATA codes (Appendix B).  This module provides the common city
directory all of those layers share.

The atlas is embedded (no data files, no network) and deterministic.  It
covers the metros where real CDN PoPs, IXPs, and RIPE Atlas probes are
concentrated, with coordinates accurate to well under the 100 km resolution
the latency model can distinguish.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.areas import Area, area_of_country
from repro.geo.coords import GeoPoint
from repro.geo.countries import Continent, continent_of

# (IATA, city name, country code, lat, lon)
_CITY_ROWS: tuple[tuple[str, str, str, float, float], ...] = (
    # --- North America: United States -------------------------------------
    ("JFK", "New York", "US", 40.71, -74.01),
    ("IAD", "Ashburn", "US", 39.04, -77.49),
    ("BOS", "Boston", "US", 42.36, -71.06),
    ("PHL", "Philadelphia", "US", 39.95, -75.17),
    ("ATL", "Atlanta", "US", 33.75, -84.39),
    ("MIA", "Miami", "US", 25.76, -80.19),
    ("TPA", "Tampa", "US", 27.95, -82.46),
    ("CLT", "Charlotte", "US", 35.23, -80.84),
    ("ORD", "Chicago", "US", 41.88, -87.63),
    ("DTW", "Detroit", "US", 42.33, -83.05),
    ("MSP", "Minneapolis", "US", 44.98, -93.27),
    ("STL", "St. Louis", "US", 38.63, -90.20),
    ("MCI", "Kansas City", "US", 39.10, -94.58),
    ("DFW", "Dallas", "US", 32.78, -96.80),
    ("IAH", "Houston", "US", 29.76, -95.37),
    ("AUS", "Austin", "US", 30.27, -97.74),
    ("DEN", "Denver", "US", 39.74, -104.99),
    ("SLC", "Salt Lake City", "US", 40.76, -111.89),
    ("PHX", "Phoenix", "US", 33.45, -112.07),
    ("LAS", "Las Vegas", "US", 36.17, -115.14),
    ("LAX", "Los Angeles", "US", 34.05, -118.24),
    ("SAN", "San Diego", "US", 32.72, -117.16),
    ("SJC", "San Jose", "US", 37.34, -121.89),
    ("SFO", "San Francisco", "US", 37.77, -122.42),
    ("SEA", "Seattle", "US", 47.61, -122.33),
    ("PDX", "Portland", "US", 45.52, -122.68),
    ("BUF", "Buffalo", "US", 42.89, -78.88),
    ("DCA", "Washington", "US", 38.91, -77.04),
    ("PIT", "Pittsburgh", "US", 40.44, -79.99),
    ("HNL", "Honolulu", "US", 21.31, -157.86),
    # --- North America: Canada -------------------------------------------
    ("YYZ", "Toronto", "CA", 43.65, -79.38),
    ("YUL", "Montreal", "CA", 45.50, -73.57),
    ("YVR", "Vancouver", "CA", 49.28, -123.12),
    ("YYC", "Calgary", "CA", 51.05, -114.07),
    ("YEG", "Edmonton", "CA", 53.55, -113.49),
    ("YOW", "Ottawa", "CA", 45.42, -75.70),
    ("YWG", "Winnipeg", "CA", 49.90, -97.14),
    ("YHZ", "Halifax", "CA", 44.65, -63.58),
    # --- Latin America -----------------------------------------------------
    ("MEX", "Mexico City", "MX", 19.43, -99.13),
    ("GDL", "Guadalajara", "MX", 20.67, -103.35),
    ("MTY", "Monterrey", "MX", 25.69, -100.32),
    ("GUA", "Guatemala City", "GT", 14.63, -90.51),
    ("SAL", "San Salvador", "SV", 13.69, -89.22),
    ("SJO", "San Jose CR", "CR", 9.93, -84.08),
    ("PTY", "Panama City", "PA", 8.98, -79.52),
    ("SDQ", "Santo Domingo", "DO", 18.49, -69.93),
    ("KIN", "Kingston", "JM", 17.97, -76.79),
    ("SJU", "San Juan", "PR", 18.47, -66.11),
    ("BOG", "Bogota", "CO", 4.71, -74.07),
    ("MDE", "Medellin", "CO", 6.24, -75.58),
    ("UIO", "Quito", "EC", -0.18, -78.47),
    ("LIM", "Lima", "PE", -12.05, -77.04),
    ("CCS", "Caracas", "VE", 10.48, -66.90),
    ("GRU", "Sao Paulo", "BR", -23.55, -46.63),
    ("GIG", "Rio de Janeiro", "BR", -22.91, -43.17),
    ("BSB", "Brasilia", "BR", -15.79, -47.88),
    ("FOR", "Fortaleza", "BR", -3.73, -38.52),
    ("POA", "Porto Alegre", "BR", -30.03, -51.23),
    ("EZE", "Buenos Aires", "AR", -34.60, -58.38),
    ("COR", "Cordoba", "AR", -31.42, -64.18),
    ("SCL", "Santiago", "CL", -33.45, -70.67),
    ("MVD", "Montevideo", "UY", -34.90, -56.16),
    ("ASU", "Asuncion", "PY", -25.26, -57.58),
    ("LPB", "La Paz", "BO", -16.50, -68.15),
    # --- Europe -------------------------------------------------------------
    ("LHR", "London", "GB", 51.51, -0.13),
    ("MAN", "Manchester", "GB", 53.48, -2.24),
    ("EDI", "Edinburgh", "GB", 55.95, -3.19),
    ("DUB", "Dublin", "IE", 53.35, -6.26),
    ("AMS", "Amsterdam", "NL", 52.37, 4.90),
    ("BRU", "Brussels", "BE", 50.85, 4.35),
    ("LUX", "Luxembourg", "LU", 49.61, 6.13),
    ("CDG", "Paris", "FR", 48.86, 2.35),
    ("MRS", "Marseille", "FR", 43.30, 5.37),
    ("LYS", "Lyon", "FR", 45.76, 4.84),
    ("FRA", "Frankfurt", "DE", 50.11, 8.68),
    ("MUC", "Munich", "DE", 48.14, 11.58),
    ("TXL", "Berlin", "DE", 52.52, 13.41),
    ("HAM", "Hamburg", "DE", 53.55, 9.99),
    ("DUS", "Dusseldorf", "DE", 51.23, 6.78),
    ("ZRH", "Zurich", "CH", 47.38, 8.54),
    ("GVA", "Geneva", "CH", 46.20, 6.14),
    ("VIE", "Vienna", "AT", 48.21, 16.37),
    ("MAD", "Madrid", "ES", 40.42, -3.70),
    ("BCN", "Barcelona", "ES", 41.39, 2.17),
    ("LIS", "Lisbon", "PT", 38.72, -9.14),
    ("MXP", "Milan", "IT", 45.46, 9.19),
    ("FCO", "Rome", "IT", 41.90, 12.50),
    ("PMO", "Palermo", "IT", 38.12, 13.36),
    ("CPH", "Copenhagen", "DK", 55.68, 12.57),
    ("ARN", "Stockholm", "SE", 59.33, 18.07),
    ("GOT", "Gothenburg", "SE", 57.71, 11.97),
    ("OSL", "Oslo", "NO", 59.91, 10.75),
    ("HEL", "Helsinki", "FI", 60.17, 24.94),
    ("KEF", "Reykjavik", "IS", 64.15, -21.94),
    ("WAW", "Warsaw", "PL", 52.23, 21.01),
    ("KRK", "Krakow", "PL", 50.06, 19.94),
    ("PRG", "Prague", "CZ", 50.08, 14.44),
    ("BTS", "Bratislava", "SK", 48.15, 17.11),
    ("BUD", "Budapest", "HU", 47.50, 19.04),
    ("OTP", "Bucharest", "RO", 44.43, 26.10),
    ("SOF", "Sofia", "BG", 42.70, 23.32),
    ("ATH", "Athens", "GR", 37.98, 23.73),
    ("ZAG", "Zagreb", "HR", 45.81, 15.98),
    ("LJU", "Ljubljana", "SI", 46.06, 14.51),
    ("BEG", "Belgrade", "RS", 44.79, 20.45),
    ("TIA", "Tirana", "AL", 41.33, 19.82),
    ("SKP", "Skopje", "MK", 41.99, 21.43),
    ("TLL", "Tallinn", "EE", 59.44, 24.75),
    ("RIX", "Riga", "LV", 56.95, 24.11),
    ("VNO", "Vilnius", "LT", 54.69, 25.28),
    ("KBP", "Kyiv", "UA", 50.45, 30.52),
    ("MSQ", "Minsk", "BY", 53.90, 27.57),
    ("KIV", "Chisinau", "MD", 47.01, 28.86),
    ("MLA", "Valletta", "MT", 35.90, 14.51),
    # --- Russia --------------------------------------------------------------
    ("SVO", "Moscow", "RU", 55.76, 37.62),
    ("LED", "St. Petersburg", "RU", 59.93, 30.34),
    ("SVX", "Yekaterinburg", "RU", 56.84, 60.65),
    ("OVB", "Novosibirsk", "RU", 55.03, 82.92),
    ("VVO", "Vladivostok", "RU", 43.12, 131.89),
    # --- Middle East ---------------------------------------------------------
    ("IST", "Istanbul", "TR", 41.01, 28.98),
    ("ESB", "Ankara", "TR", 39.93, 32.86),
    ("TLV", "Tel Aviv", "IL", 32.09, 34.78),
    ("RUH", "Riyadh", "SA", 24.71, 46.68),
    ("JED", "Jeddah", "SA", 21.49, 39.19),
    ("DXB", "Dubai", "AE", 25.20, 55.27),
    ("AUH", "Abu Dhabi", "AE", 24.45, 54.38),
    ("DOH", "Doha", "QA", 25.29, 51.53),
    ("KWI", "Kuwait City", "KW", 29.38, 47.99),
    ("BAH", "Manama", "BH", 26.23, 50.59),
    ("MCT", "Muscat", "OM", 23.59, 58.41),
    ("AMM", "Amman", "JO", 31.96, 35.95),
    ("BEY", "Beirut", "LB", 33.89, 35.50),
    ("BGW", "Baghdad", "IQ", 33.31, 44.37),
    ("IKA", "Tehran", "IR", 35.69, 51.39),
    ("TBS", "Tbilisi", "GE", 41.72, 44.79),
    ("EVN", "Yerevan", "AM", 40.18, 44.51),
    ("GYD", "Baku", "AZ", 40.41, 49.87),
    ("LCA", "Nicosia", "CY", 35.17, 33.36),
    # --- Africa ----------------------------------------------------------------
    ("JNB", "Johannesburg", "ZA", -26.20, 28.05),
    ("CPT", "Cape Town", "ZA", -33.93, 18.42),
    ("DUR", "Durban", "ZA", -29.86, 31.03),
    ("CAI", "Cairo", "EG", 30.04, 31.24),
    ("LOS", "Lagos", "NG", 6.52, 3.38),
    ("ABV", "Abuja", "NG", 9.06, 7.49),
    ("NBO", "Nairobi", "KE", -1.29, 36.82),
    ("CMN", "Casablanca", "MA", 33.57, -7.59),
    ("TUN", "Tunis", "TN", 36.81, 10.18),
    ("ALG", "Algiers", "DZ", 36.75, 3.06),
    ("ACC", "Accra", "GH", 5.60, -0.19),
    ("DKR", "Dakar", "SN", 14.72, -17.47),
    ("ABJ", "Abidjan", "CI", 5.36, -4.01),
    ("ADD", "Addis Ababa", "ET", 9.03, 38.74),
    ("DAR", "Dar es Salaam", "TZ", -6.79, 39.21),
    ("EBB", "Kampala", "UG", 0.35, 32.58),
    ("LAD", "Luanda", "AO", -8.84, 13.23),
    ("MRU", "Port Louis", "MU", -20.16, 57.50),
    ("KGL", "Kigali", "RW", -1.94, 30.06),
    ("MPM", "Maputo", "MZ", -25.97, 32.57),
    # --- Asia ----------------------------------------------------------------
    ("PEK", "Beijing", "CN", 39.90, 116.41),
    ("PVG", "Shanghai", "CN", 31.23, 121.47),
    ("CAN", "Guangzhou", "CN", 23.13, 113.26),
    ("SZX", "Shenzhen", "CN", 22.54, 114.06),
    ("CTU", "Chengdu", "CN", 30.57, 104.07),
    ("HKG", "Hong Kong", "HK", 22.32, 114.17),
    ("TPE", "Taipei", "TW", 25.03, 121.57),
    ("NRT", "Tokyo", "JP", 35.68, 139.69),
    ("KIX", "Osaka", "JP", 34.69, 135.50),
    ("ICN", "Seoul", "KR", 37.57, 126.98),
    ("PUS", "Busan", "KR", 35.18, 129.08),
    ("SIN", "Singapore", "SG", 1.35, 103.82),
    ("KUL", "Kuala Lumpur", "MY", 3.14, 101.69),
    ("BKK", "Bangkok", "TH", 13.76, 100.50),
    ("SGN", "Ho Chi Minh City", "VN", 10.82, 106.63),
    ("HAN", "Hanoi", "VN", 21.03, 105.85),
    ("MNL", "Manila", "PH", 14.60, 120.98),
    ("CGK", "Jakarta", "ID", -6.21, 106.85),
    ("BOM", "Mumbai", "IN", 19.08, 72.88),
    ("DEL", "New Delhi", "IN", 28.61, 77.21),
    ("MAA", "Chennai", "IN", 13.08, 80.27),
    ("BLR", "Bangalore", "IN", 12.97, 77.59),
    ("CCU", "Kolkata", "IN", 22.57, 88.36),
    ("HYD", "Hyderabad", "IN", 17.38, 78.49),
    ("KHI", "Karachi", "PK", 24.86, 67.01),
    ("ISB", "Islamabad", "PK", 33.68, 73.05),
    ("DAC", "Dhaka", "BD", 23.81, 90.41),
    ("CMB", "Colombo", "LK", 6.93, 79.86),
    ("KTM", "Kathmandu", "NP", 27.72, 85.32),
    ("PNH", "Phnom Penh", "KH", 11.56, 104.92),
    ("RGN", "Yangon", "MM", 16.87, 96.20),
    ("ULN", "Ulaanbaatar", "MN", 47.89, 106.91),
    ("ALA", "Almaty", "KZ", 43.24, 76.95),
    ("TAS", "Tashkent", "UZ", 41.30, 69.24),
    # --- Oceania ---------------------------------------------------------------
    ("SYD", "Sydney", "AU", -33.87, 151.21),
    ("MEL", "Melbourne", "AU", -37.81, 144.96),
    ("BNE", "Brisbane", "AU", -27.47, 153.03),
    ("PER", "Perth", "AU", -31.95, 115.86),
    ("ADL", "Adelaide", "AU", -34.93, 138.60),
    ("AKL", "Auckland", "NZ", -36.85, 174.76),
    ("WLG", "Wellington", "NZ", -41.29, 174.78),
    ("NAN", "Nadi", "FJ", -17.76, 177.44),
)


@dataclass(frozen=True)
class City:
    """A metro area identified by its IATA code.

    The IATA code serves as the paper's city code (§3.1); ``location`` is the
    metro centroid used for distance and latency computations.
    """

    iata: str
    name: str
    country: str
    location: GeoPoint

    @property
    def continent(self) -> Continent:
        return continent_of(self.country)

    @property
    def area(self) -> Area:
        return area_of_country(self.country)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} ({self.iata}, {self.country})"


@dataclass
class WorldAtlas:
    """An indexed collection of cities.

    Provides the lookups the rest of the simulator needs: by IATA code, by
    country, by continent/area, and nearest-city search ("closest airport
    within the same country", §3.1).
    """

    cities: tuple[City, ...]
    _by_iata: dict[str, City] = field(init=False, repr=False)
    _by_country: dict[str, list[City]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._by_iata = {}
        self._by_country = {}
        for city in self.cities:
            if city.iata in self._by_iata:
                raise ValueError(f"duplicate IATA code in atlas: {city.iata}")
            self._by_iata[city.iata] = city
            self._by_country.setdefault(city.country, []).append(city)

    def __len__(self) -> int:
        return len(self.cities)

    def __iter__(self):
        return iter(self.cities)

    def __contains__(self, iata: str) -> bool:
        return iata in self._by_iata

    def get(self, iata: str) -> City:
        """City by IATA code; raises KeyError for unknown codes."""
        try:
            return self._by_iata[iata]
        except KeyError:
            raise KeyError(f"unknown IATA code: {iata!r}") from None

    def in_country(self, country: str) -> list[City]:
        """All atlas cities in a country (possibly empty)."""
        return list(self._by_country.get(country, []))

    def in_area(self, area: Area) -> list[City]:
        """All atlas cities in one of the paper's probe areas."""
        return [c for c in self.cities if c.area is area]

    def countries(self) -> list[str]:
        """All countries with at least one atlas city, in stable order."""
        return list(self._by_country)

    def nearest(self, point: GeoPoint, country: str | None = None) -> City:
        """The atlas city nearest to ``point``.

        When ``country`` is given, the search is restricted to that country,
        matching the paper's "closest airport within the same country" rule
        for probe city codes.  Falls back to the global nearest city if the
        country has no atlas city.
        """
        candidates = self._by_country.get(country, []) if country else []
        if not candidates:
            candidates = list(self.cities)
        return min(candidates, key=lambda c: c.location.distance_km(point))


_DEFAULT_ATLAS: WorldAtlas | None = None


def load_default_atlas() -> WorldAtlas:
    """The shared embedded atlas instance (built once, cached)."""
    global _DEFAULT_ATLAS
    if _DEFAULT_ATLAS is None:
        _DEFAULT_ATLAS = WorldAtlas(
            cities=tuple(
                City(iata=iata, name=name, country=country, location=GeoPoint(lat, lon))
                for iata, name, country, lat, lon in _CITY_ROWS
            )
        )
    return _DEFAULT_ATLAS
