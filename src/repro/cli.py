"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``world``  — build a world and print its structural summary;
- ``list``   — list the available experiments;
- ``run``    — run experiments (all by default), optionally exporting
  structured results to JSON;
- ``demo``   — run a micro-case (fig1 / fig7) standalone;
- ``lint``   — Layer-1 determinism linter (``--list-rules`` for ids);
- ``verify --deep`` adds the Layer-2 routing-invariant analyzer;
- ``obs``    — observability: ``summary`` / ``compare`` over the run
  manifests that ``run --trace DIR`` / ``world --trace DIR`` write,
  ``profile`` for span-aware function profiles, ``memory`` for the
  allocation profile + structure census of a ``--memory`` run,
  ``ingest`` / ``trend`` for the append-only benchmark history,
  ``timeline`` for per-worker Gantt lanes + parallel overhead
  attribution, ``speedup`` for the serial-vs-parallel crossover
  analyzer, ``dashboard`` for the combined per-run report (terminal or
  ``--html``), and the live-telemetry trio ``tail`` / ``watch`` /
  ``watchdog`` for following, dashboarding, and stall-gating a run
  while it is still executing;
- ``explain`` — decision provenance: ``client`` (why one probe landed
  where it did, end to end), ``diff`` (attribute every flipped client
  between two prefixes to the AS decision that changed, §5.4), and
  ``catchment`` (per-site winner-tier breakdown of one prefix);
- ``cache`` — persistent routing-table cache: ``stats`` / ``clear``
  (enable with ``--cache-dir`` / ``REPRO_CACHE_DIR`` on builds);
- ``digest`` — routing-table digest over the announced prefixes; used
  by CI to assert serial and ``REPRO_WORKERS=4`` runs are byte-equal.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import obs
from repro.experiments import config
from repro.experiments.base import run_instrumented
from repro.experiments.runner import ALL_EXPERIMENTS
from repro.experiments.world import World, get_world


def _config_from_args(args: argparse.Namespace):
    name = getattr(args, "config_name", None)
    if name:
        return config.by_name(name)
    return config.SMALL if getattr(args, "small", False) else config.DEFAULT


def _add_config_argument(parser: argparse.ArgumentParser) -> None:
    """``--config NAME`` preset selector (``--small`` stays as shorthand)."""
    parser.add_argument(
        "--config", dest="config_name", metavar="NAME",
        choices=[c.name for c in config.CONFIGS],
        help="world preset to build (%(choices)s); overrides --small",
    )


def _apply_cache_dir(args: argparse.Namespace) -> None:
    """Honour ``--cache-dir DIR`` by overriding the default cache."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        from repro.par.cache import RoutingTableCache, set_default_cache

        set_default_cache(RoutingTableCache(cache_dir))


def _attach_memory_census(world, recorder) -> list:
    """Census the built world's state for the manifest's memory payload."""
    from repro.obs.memory import world_census

    with obs.span("obs.memory_census"):
        rows = world_census(world)
    return [row.to_dict() for row in rows]


def _print_memory_report(memory, recorder) -> None:
    """Render the allocation profile + census after a --memory run."""
    from repro.obs.memory import memory_payload, render_memory_section

    memory.stop()  # idempotent; tracing() already stopped it
    payload = memory_payload(memory.snapshot())
    if recorder.memory_census is not None:
        payload["census"] = recorder.memory_census
    print(render_memory_section(payload))
    print()


def _cmd_world(args: argparse.Namespace) -> int:
    from repro.obs.manifest import tracing
    from repro.topology.stats import summarize

    cfg = _config_from_args(args)
    _apply_cache_dir(args)
    memory = None
    if getattr(args, "memory", False):
        from repro.obs.memory import MemoryProfiler

        memory = MemoryProfiler("repro-world")
    with tracing(args.trace, label="repro-world", config=cfg,
                 argv=sys.argv[1:], memory=memory) as recorder:
        start = time.perf_counter()
        world = World(cfg)
        elapsed = time.perf_counter() - start
        if memory is not None and recorder is not None:
            recorder.memory_census = _attach_memory_census(world, recorder)
    if memory is not None and recorder is not None:
        _print_memory_report(memory, recorder)
    print(f"world '{cfg.name}' built in {elapsed:.2f}s")
    print(summarize(world.topology).as_text())
    print(
        f"probes: {len(world.probes.all_probes())} total, "
        f"{len(world.usable_probes)} usable, {len(world.groups)} groups"
    )
    print(
        "deployments: Edgio (3- and 4-region), Imperva-6, Imperva-NS, "
        "Tangled (12 sites)"
    )
    if recorder is not None and recorder.manifest_path is not None:
        print(f"[obs] manifest written to {recorder.manifest_path}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    for module, description in ALL_EXPERIMENTS:
        name = module.__name__.rsplit(".", 1)[-1]
        print(f"{name:18} {description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = _config_from_args(args)
    wanted = set(args.experiments)
    selected = [
        (module, description)
        for module, description in ALL_EXPERIMENTS
        if not wanted or module.__name__.rsplit(".", 1)[-1] in wanted
    ]
    if wanted:
        known = {m.__name__.rsplit(".", 1)[-1] for m, _ in ALL_EXPERIMENTS}
        unknown = wanted - known
        if unknown:
            print(f"unknown experiments: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            print(f"available: {', '.join(sorted(known))}", file=sys.stderr)
            return 2
    from repro.obs.manifest import tracing

    _apply_cache_dir(args)
    profiler = None
    if args.profile:
        from repro.obs.prof import SpanProfiler

        profiler = SpanProfiler("repro-run")
    memory = None
    if getattr(args, "memory", False):
        from repro.obs.memory import MemoryProfiler

        memory = MemoryProfiler("repro-run")
    with tracing(args.trace, label="repro-run", config=cfg,
                 argv=sys.argv[1:], profiler=profiler,
                 memory=memory) as recorder:
        world = get_world(cfg)
        results = []
        with obs.span("experiments.run_all", experiments=len(selected)):
            if args.parallel:
                from repro.experiments.runner import run_selected_parallel

                for (module, description), (result, wall_ms) in zip(
                    selected, run_selected_parallel(world, selected)
                ):
                    results.append(result)
                    print(result.render())
                    if args.plots and hasattr(result, "render_plot"):
                        print(result.render_plot())
                    print(f"[{description}: {wall_ms / 1000.0:.2f}s]\n")
            else:
                for module, description in selected:
                    start = time.perf_counter()
                    result, _record = run_instrumented(module, description,
                                                       world)
                    elapsed = time.perf_counter() - start
                    results.append(result)
                    print(result.render())
                    if args.plots and hasattr(result, "render_plot"):
                        print(result.render_plot())
                    print(f"[{description}: {elapsed:.2f}s]\n")
        if recorder is not None:
            from repro.obs.health import record_health

            # The claim scorecard re-runs experiments; only fold it in
            # when this run already covered all of them.
            record_health(world, include_claims=not wanted)
        if memory is not None and recorder is not None:
            recorder.memory_census = _attach_memory_census(world, recorder)
    if memory is not None and recorder is not None:
        _print_memory_report(memory, recorder)
    if profiler is not None and recorder is not None:
        from repro.obs.prof import render_profile
        from repro.obs.report import render_span_tree

        print(render_span_tree(recorder.root))
        print()
        print(render_profile(profiler.snapshot()))
    if args.json:
        from repro.experiments.export import export_results

        export_results(results, args.json)
        print(f"structured results written to {args.json}")
    if recorder is not None and recorder.manifest_path is not None:
        print(f"[obs] manifest written to {recorder.manifest_path}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.experiments.claims import render_scorecard, verify_claims

    world = get_world(_config_from_args(args))
    outcomes = verify_claims(world)
    print(render_scorecard(outcomes))
    status = 0 if all(o.passed for o in outcomes) else 1
    if getattr(args, "deep", False):
        from repro.lint.invariants import analyze_world, render_invariant_report
        from repro.lint.runner import run_deep_static

        findings = analyze_world(world)
        print()
        print(render_invariant_report(findings))
        if findings:
            status = 1
        report = run_deep_static()
        print()
        print(report.render())
        if not report.clean:
            status = 1
    return status


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis: Layer 1 per-file, Layer 3 whole-program."""
    from pathlib import Path

    from repro.lint.findings import RULES
    from repro.lint.runner import (
        default_target,
        lint_paths,
        render_report,
        run_deep_static,
    )

    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULES)
        for rule_id, spec in sorted(RULES.items()):
            print(f"{rule_id:{width}}  {spec.summary}")
        return 0
    if args.self_check:
        from repro.lint.selfcheck import render_self_check, run_self_check

        result = run_self_check()
        print(render_self_check(result))
        return 0 if all(result.values()) else 1
    if args.deep_static:
        if len(args.paths) > 1:
            print("--deep-static takes at most one root directory",
                  file=sys.stderr)
            return 2
        root = Path(args.paths[0]) if args.paths else None
        if root is not None and not root.is_dir():
            print(f"no such directory: {root}", file=sys.stderr)
            return 2
        baseline = Path(args.baseline) if args.baseline else None
        kwargs = {} if baseline is None else {"baseline": baseline}
        report = run_deep_static(root, **kwargs)
        print(report.render())
        if args.json:
            import json

            Path(args.json).write_text(
                json.dumps(report.to_dict(), indent=2) + "\n",
                encoding="utf-8",
            )
            print(f"findings written to {args.json}")
        return 1 if report.findings else 0
    targets = args.paths or [str(default_target())]
    missing = [t for t in targets if not Path(t).exists()]
    if missing:
        print(f"no such file or directory: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    findings = lint_paths(targets)
    print(render_report(findings))
    if args.json:
        import json

        document = {
            "schema": 1,
            "generated_by": "repro lint",
            "findings": [f.to_dict() for f in findings],
        }
        Path(args.json).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )
        print(f"findings written to {args.json}")
    return 1 if findings else 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Generate a markdown report: scorecard + every experiment render."""
    from repro.experiments.claims import render_scorecard, verify_claims
    from repro.experiments.runner import ALL_EXPERIMENTS

    cfg = _config_from_args(args)
    world = get_world(cfg)
    outcomes = verify_claims(world)
    sections = [
        "# Reproduction report",
        "",
        f"World: `{cfg.name}` — {world.topology.num_nodes} nodes, "
        f"{world.topology.num_links} links, "
        f"{len(world.usable_probes)} usable probes, "
        f"{len(world.groups)} probe groups.",
        "",
        "```",
        render_scorecard(outcomes),
        "```",
    ]
    for module, description in ALL_EXPERIMENTS:
        result = module.run(world)
        sections += ["", f"## {description}", "", "```",
                     result.render(), "```"]
    text = "\n".join(sections) + "\n"
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"report written to {args.out}")
    else:
        print(text)
    return 0 if all(o.passed for o in outcomes) else 1


def _cmd_lg(args: argparse.Namespace) -> int:
    """Looking glass: one AS's routes for a deployment's prefixes."""
    from repro.routing.inspect import show_route, summarize_catchment

    world = get_world(_config_from_args(args))
    deployments = {
        "im6": world.imperva.im6,
        "ns": world.imperva.ns,
        "eg3": world.edgio.eg3,
        "eg4": world.edgio.eg4,
        "tangled": world.tangled.global_deployment,
    }
    target = deployments[args.deployment]
    if hasattr(target, "regional_addresses"):
        addrs = target.regional_addresses()
    else:
        addrs = [target.address]
    for addr in addrs:
        table = world.engine.table_for(addr)
        if args.asn is not None:
            node = next(
                (n for n in world.topology.nodes() if n.asn == args.asn
                 and not n.is_site),
                None,
            )
            if node is None:
                print(f"unknown ASN {args.asn}", file=sys.stderr)
                return 2
            print(show_route(world.topology, table, node.node_id))
        else:
            print(summarize_catchment(world.topology, table)
                  .render(world.topology))
        print()
    return 0


def _load_run_artifact(path: str):
    """Load any run artifact: manifest, checkpoint, or events JSONL.

    ``run-<id>.json`` and ``run-<id>.checkpoint.json`` load as
    manifests directly; an ``events-<id>.jsonl`` stream — including the
    torn stream of a killed run — is replayed into a partial manifest
    (unclosed spans marked ``open``, ``incomplete=True``).
    """
    from repro.obs.manifest import load_manifest

    if str(path).endswith(".jsonl"):
        from repro.obs.live import manifest_from_events

        return manifest_from_events(path)
    return load_manifest(path)


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    """Top spans by self time + counter/gauge tables for one manifest."""
    from repro.obs.report import render_summary

    try:
        manifest = _load_run_artifact(args.run)
    except (OSError, ValueError) as exc:
        print(f"cannot read manifest {args.run}: {exc}", file=sys.stderr)
        return 2
    print(render_summary(manifest, top=args.top))
    return 0


def _cmd_obs_compare(args: argparse.Namespace) -> int:
    """Per-span wall-time deltas between two manifests; gate on --fail-over."""
    from repro.obs.manifest import load_manifest
    from repro.obs.report import compare_manifests, render_compare

    try:
        base = load_manifest(args.base)
        other = load_manifest(args.other)
    except (OSError, ValueError) as exc:
        print(f"cannot read manifests: {exc}", file=sys.stderr)
        return 2
    deltas = compare_manifests(base, other)
    text, regressions = render_compare(
        base, other, deltas,
        fail_over_pct=args.fail_over,
        min_wall_ms=args.min_wall,
        top=args.top,
    )
    print(text)
    return 1 if regressions else 0


def _cmd_obs_profile(args: argparse.Namespace) -> int:
    """Profile one experiment (or the world build) grouped by span path."""
    from repro.obs.manifest import tracing
    from repro.obs.prof import SpanProfiler, render_profile
    from repro.obs.report import render_span_tree

    cfg = _config_from_args(args)
    known = {
        module.__name__.rsplit(".", 1)[-1]: (module, description)
        for module, description in ALL_EXPERIMENTS
    }
    if args.target != "world" and args.target not in known:
        print(f"unknown target: {args.target}", file=sys.stderr)
        print(f"available: world, {', '.join(sorted(known))}", file=sys.stderr)
        return 2
    profiler = SpanProfiler("repro-profile")
    with tracing(args.trace, label="repro-profile", config=cfg,
                 argv=sys.argv[1:], profiler=profiler) as recorder:
        if args.target == "world":
            World(cfg)
        else:
            world = get_world(cfg)
            module, description = known[args.target]
            run_instrumented(module, description, world)
    assert recorder is not None  # a profiler forces recording
    print(render_span_tree(recorder.root))
    print()
    print(render_profile(profiler.snapshot(), top_paths=args.top,
                         top_functions=args.top))
    if recorder.manifest_path is not None:
        print(f"\n[obs] manifest written to {recorder.manifest_path}")
    return 0


def _cmd_obs_memory(args: argparse.Namespace) -> int:
    """Render the memory payload (allocation profile + census) of a run."""
    from repro.obs.manifest import load_manifest
    from repro.obs.memory import render_memory_section

    try:
        manifest = load_manifest(args.run)
    except (OSError, ValueError) as exc:
        print(f"cannot read manifest {args.run}: {exc}", file=sys.stderr)
        return 2
    if manifest.memory is None:
        print(f"manifest {args.run} has no memory payload "
              "(re-run with --memory)", file=sys.stderr)
        return 2
    print(render_memory_section(manifest.memory, top=args.top))
    return 0


def _cmd_obs_ingest(args: argparse.Namespace) -> int:
    """Append run manifests / BENCH artifacts to the trend history."""
    from repro.obs.trend import history_file, ingest_files

    try:
        results = ingest_files(args.history, args.files)
    except (OSError, ValueError) as exc:
        print(f"cannot ingest: {exc}", file=sys.stderr)
        return 2
    for record, appended in results:
        if appended:
            print(f"ingested {record.run_id} ({record.label}, "
                  f"{len(record.series)} series) -> "
                  f"{history_file(args.history, record.label)}")
        else:
            print(f"skipped {record.run_id} ({record.label}): "
                  "already in history")
    return 0


def _cmd_obs_trend(args: argparse.Namespace) -> int:
    """Sparkline trends over the history; --gate fails on regressions."""
    from repro.obs.trend import check_history

    text, regressions = check_history(
        args.history,
        window=args.window,
        top=args.top,
        mad_k=args.mad_k,
        min_rel_pct=args.min_rel,
        min_wall_ms=args.min_wall,
    )
    print(text)
    return 1 if args.gate and regressions else 0


def _cmd_obs_timeline(args: argparse.Namespace) -> int:
    """Per-worker Gantt timeline + overhead attribution of one run."""
    from pathlib import Path

    from repro.obs.manifest import load_manifest
    from repro.obs.timeline import (
        build_timeline,
        render_timeline,
        timeline_to_dict,
    )

    try:
        manifest = load_manifest(args.run)
    except (OSError, ValueError) as exc:
        print(f"cannot read manifest {args.run}: {exc}", file=sys.stderr)
        return 2
    timeline = build_timeline(manifest)
    print(render_timeline(timeline, width=args.width))
    if args.json:
        import json

        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(timeline_to_dict(timeline), indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"\ntimeline written to {out}")
    return 0


def _cmd_obs_speedup(args: argparse.Namespace) -> int:
    """Serial-vs-parallel crossover analysis; --gate fails on regression."""
    from repro.obs.speedup import groups_from_history, render_pair, render_speedup

    if args.pair:
        from repro.obs.manifest import load_manifest

        try:
            serial = load_manifest(args.pair[0])
            parallel = load_manifest(args.pair[1])
        except (OSError, ValueError) as exc:
            print(f"cannot read manifest pair: {exc}", file=sys.stderr)
            return 2
        print(render_pair(serial, parallel))
        return 0
    groups = groups_from_history(args.history)
    config_filter = getattr(args, "config_filter", None)
    if config_filter:
        groups = [g for g in groups if (g.config or "-") == config_filter]
        if not groups:
            print(f"no serial/parallel pairs for config "
                  f"{config_filter!r} in {args.history}", file=sys.stderr)
            return 2
    text, regressions = render_speedup(
        groups, gate=args.gate, tol_pct=args.tol
    )
    print(text)
    return 1 if args.gate and regressions else 0


def _cmd_obs_dashboard(args: argparse.Namespace) -> int:
    """Combined report for one run: spans, profile, health, trends."""
    from pathlib import Path

    from repro.obs.report import render_dashboard, render_dashboard_html

    try:
        manifest = _load_run_artifact(args.run)
    except (OSError, ValueError) as exc:
        print(f"cannot read manifest {args.run}: {exc}", file=sys.stderr)
        return 2
    lint_data = None
    if args.lint:
        import json

        try:
            lint_data = json.loads(
                Path(args.lint).read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"cannot read lint findings {args.lint}: {exc}",
                  file=sys.stderr)
            return 2
    print(render_dashboard(manifest, history_dir=args.history, top=args.top,
                           lint=lint_data))
    if args.html:
        page = render_dashboard_html(manifest, history_dir=args.history,
                                     top=args.top, lint=lint_data)
        out = Path(args.html)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(page, encoding="utf-8")
        print(f"\ndashboard written to {out}")
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    """Follow a live event stream, one human line per event."""
    from repro.obs.live import (
        EventFollower,
        render_tail_line,
        resolve_events_path,
    )

    try:
        path = resolve_events_path(args.target, wait_s=args.wait)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    follower = EventFollower(path)
    deadline = (
        None if args.timeout is None else time.monotonic() + args.timeout
    )
    try:
        while True:
            for event in follower.poll():
                line = render_tail_line(event)
                if line is not None:
                    print(line, flush=True)
            if follower.completed:
                return 0
            if args.once:
                return 0
            if deadline is not None and time.monotonic() >= deadline:
                if args.until_end:
                    print(
                        f"timeout: no run_end after {args.timeout:.0f}s "
                        f"({path})",
                        file=sys.stderr,
                    )
                    return 1
                return 0
            time.sleep(args.poll)
    except KeyboardInterrupt:
        return 0


def _cmd_obs_watch(args: argparse.Namespace) -> int:
    """Live terminal dashboard: span stack, % complete, ETA, workers."""
    from repro.obs.events import EventLog
    from repro.obs.live import (
        EventFollower,
        compute_status,
        expectations_for_label,
        heartbeat_dir_for,
        read_worker_heartbeats,
        render_watch,
        replay_events,
        resolve_events_path,
        worker_statuses,
    )

    try:
        path = resolve_events_path(args.target, wait_s=args.wait)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    follower = EventFollower(path)
    hb_dir = heartbeat_dir_for(path)
    expectations = None
    clear = sys.stdout.isatty() and not args.once
    try:
        while True:
            follower.poll()
            view = replay_events(EventLog(list(follower.events)))
            if expectations is None:
                expectations = expectations_for_label(
                    args.history, view.label
                )
            workers = worker_statuses(read_worker_heartbeats(hb_dir))
            status = compute_status(
                view, expectations, now_unix=time.time(), workers=workers
            )
            frame = render_watch(status)
            if clear:
                print("\x1b[2J\x1b[H" + frame, flush=True)
            else:
                print(frame, flush=True)
            if args.once or follower.completed:
                return 0
            print("", flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_obs_watchdog(args: argparse.Namespace) -> int:
    """Stall check over one stream; --gate exits non-zero on findings."""
    from repro.obs.live import (
        expectations_for_label,
        heartbeat_dir_for,
        read_worker_heartbeats,
        replay_events,
        resolve_events_path,
        worker_statuses,
    )
    from repro.obs.watchdog import check_stream, gate_exit_code, render_report

    try:
        path = resolve_events_path(args.target)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    from repro.obs.events import read_events

    events = read_events(path)
    view = replay_events(events)
    expectations = expectations_for_label(args.history, view.label)
    beats = read_worker_heartbeats(heartbeat_dir_for(path))
    findings = check_stream(
        view,
        expectations,
        hb_gap_s=args.hb_gap,
        worker_gap_s=args.worker_gap,
        mad_k=args.mad_k,
        min_budget_ms=args.min_budget,
        worker_beats=beats,
    )
    print(render_report(view, findings, workers=worker_statuses(beats)))
    return gate_exit_code(findings) if args.gate else 0


def _explain_session(args: argparse.Namespace):
    from repro.explain.journey import ExplainSession

    return ExplainSession(get_world(_config_from_args(args)))


def _cmd_explain_client(args: argparse.Namespace) -> int:
    """End-to-end journey of one probe: DNS -> BGP trail -> landing site."""
    from repro.obs.manifest import tracing

    cfg = _config_from_args(args)
    modes = ["regional", "global"] if args.mode == "both" else [args.mode]
    with tracing(args.trace, label="repro-explain", config=cfg,
                 argv=sys.argv[1:]) as recorder:
        session = _explain_session(args)
        try:
            journeys = [session.journey(args.probe, mode) for mode in modes]
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        from repro.explain.journey import render_journey

        print("\n\n".join(
            render_journey(j, session.topology) for j in journeys
        ))
        if recorder is not None:
            recorder.explain_data = {
                "journeys": [j.to_dict(session.topology) for j in journeys],
            }
    if recorder is not None and recorder.manifest_path is not None:
        print(f"\n[obs] manifest written to {recorder.manifest_path}")
    return 0


def _cmd_explain_diff(args: argparse.Namespace) -> int:
    """Catchment diff of two prefixes, each flip attributed to a decision."""
    from repro.obs.manifest import tracing

    cfg = _config_from_args(args)
    with tracing(args.trace, label="repro-explain", config=cfg,
                 argv=sys.argv[1:]) as recorder:
        session = _explain_session(args)
        from repro.explain.diff import (
            diff_catchments,
            diff_regional_vs_global,
            render_diff_dict,
        )

        try:
            if {args.a, args.b} == {"global", "regional"}:
                diff = diff_regional_vs_global(session)
            else:
                diff = diff_catchments(
                    session,
                    session.announcement_for(args.a),
                    session.announcement_for(args.b),
                    label_a=args.a, label_b=args.b,
                )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        data = diff.to_dict(session.topology)
        print(render_diff_dict(data, max_examples=args.examples))
        if recorder is not None:
            recorder.explain_data = {"diffs": [data]}
    if recorder is not None and recorder.manifest_path is not None:
        print(f"\n[obs] manifest written to {recorder.manifest_path}")
    return 0


def _cmd_explain_catchment(args: argparse.Namespace) -> int:
    """Catchment summary of one prefix with winner-tier breakdown."""
    from collections import Counter

    from repro.routing.inspect import summarize_catchment

    session = _explain_session(args)
    try:
        announcement = session.announcement_for(args.prefix)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    table = session.table_for(announcement)
    print(summarize_catchment(session.topology, table)
          .render(session.topology))
    tiers: Counter = Counter()
    stages: Counter = Counter()
    prefix = str(announcement.prefix)
    for (trail_prefix, _node), trail in session.recorder.selection.items():
        if trail_prefix != prefix:
            continue
        tiers[trail.winner_tier] += 1
        stages[trail.stage] += 1
    print("\nwinning tier per AS:")
    for tier, count in tiers.most_common():
        print(f"  {tier:10} {count:5}")
    print("assigning stage per AS:")
    for stage, count in stages.most_common():
        print(f"  {stage:16} {count:5}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Persistent routing-table cache: ``stats`` / ``clear``."""
    from repro.par.cache import (
        RoutingTableCache,
        default_cache_dir,
        resolve_cache,
    )

    if args.dir:
        cache = RoutingTableCache(args.dir)
    else:
        cache = resolve_cache() or RoutingTableCache(default_cache_dir())
    if args.cache_command == "stats":
        entries, total_bytes = cache.disk_stats()
        print(f"cache directory: {cache.directory}")
        print(f"entries: {entries}")
        print(f"bytes: {total_bytes}")
        sizes = cache.entry_size_stats()
        if sizes.count:
            print(f"entry bytes: min {sizes.min_bytes}  "
                  f"mean {sizes.mean_bytes:.0f}  max {sizes.max_bytes}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} entries from {cache.directory}")
    return 0


def _cmd_digest(args: argparse.Namespace) -> int:
    """Print the routing-table digest of a world's announced prefixes.

    The digest covers every announcement in registration order and is
    byte-identical across serial and parallel runs — the check CI runs
    between its serial and ``REPRO_WORKERS=4`` legs.
    """
    from repro.par.cache import tables_digest

    _apply_cache_dir(args)
    cfg = _config_from_args(args)
    world = World(cfg)
    tables = world.engine.routing.compute_many(
        world.registry.announcements()
    )
    print(tables_digest(tables))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.experiments import fig1, fig7

    module = fig1 if args.case == "fig1" else fig7
    print(module.run().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regional IP anycast reproduction (SIGCOMM 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_world = sub.add_parser("world", help="build and summarise a world")
    p_world.add_argument("--small", action="store_true",
                         help="use the reduced test-scale world")
    _add_config_argument(p_world)
    p_world.add_argument("--trace", metavar="DIR",
                         help="record an obs trace of the build into DIR")
    p_world.add_argument("--cache-dir", metavar="DIR",
                         help="persist routing tables under DIR "
                              "(see also REPRO_CACHE_DIR)")
    p_world.add_argument("--memory", action="store_true",
                         help="attribute allocations to span paths and "
                              "census routing-state sizes after the build")
    p_world.set_defaults(func=_cmd_world)

    p_list = sub.add_parser("list", help="list available experiments")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run experiments (all by default)")
    p_run.add_argument("experiments", nargs="*",
                       help="experiment names (e.g. table3 fig6); empty = all")
    p_run.add_argument("--small", action="store_true",
                       help="use the reduced test-scale world")
    _add_config_argument(p_run)
    p_run.add_argument("--json", metavar="FILE",
                       help="export structured results to FILE")
    p_run.add_argument("--plots", action="store_true",
                       help="also render ASCII CDF plots where available")
    p_run.add_argument("--trace", metavar="DIR",
                       help="record an obs trace; writes run-<id>.json and "
                            "events-<id>.jsonl into DIR")
    p_run.add_argument("--profile", action="store_true",
                       help="attribute wall time to functions per span path "
                            "and print the tables after the run")
    p_run.add_argument("--memory", action="store_true",
                       help="attribute allocations to span paths and census "
                            "routing-state sizes (forces serial compute)")
    p_run.add_argument("--parallel", action="store_true",
                       help="run independent experiments across worker "
                            "processes (worker count from REPRO_WORKERS)")
    p_run.add_argument("--cache-dir", metavar="DIR",
                       help="persist routing tables under DIR "
                            "(see also REPRO_CACHE_DIR)")
    p_run.set_defaults(func=_cmd_run)

    p_report = sub.add_parser(
        "report", help="generate a markdown report (scorecard + experiments)")
    p_report.add_argument("--small", action="store_true")
    p_report.add_argument("--out", metavar="FILE",
                          help="write to FILE instead of stdout")
    p_report.set_defaults(func=_cmd_report)

    p_lg = sub.add_parser(
        "lg", help="looking glass: catchments or one AS's routes")
    p_lg.add_argument("deployment",
                      choices=["im6", "ns", "eg3", "eg4", "tangled"])
    p_lg.add_argument("--asn", type=int,
                      help="show this AS's routes instead of the summary")
    p_lg.add_argument("--small", action="store_true")
    p_lg.set_defaults(func=_cmd_lg)

    p_verify = sub.add_parser(
        "verify", help="check every paper claim against a fresh world")
    p_verify.add_argument("--small", action="store_true",
                          help="use the reduced test-scale world")
    p_verify.add_argument("--deep", action="store_true",
                          help="also run the routing-invariant analyzer "
                               "(valley-freeness, export rules, catchments) "
                               "and the Layer-3 whole-program static passes")
    p_verify.set_defaults(func=_cmd_verify)

    p_lint = sub.add_parser(
        "lint", help="static analysis: determinism linter over source trees")
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: the installed repro package); with "
                             "--deep-static, at most one package root dir")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list every rule id and exit")
    p_lint.add_argument("--deep-static", action="store_true",
                        help="run the Layer-3 whole-program passes "
                             "(fork-safety, purity, cache-key completeness) "
                             "instead of the per-file Layer-1 rules")
    p_lint.add_argument("--json", metavar="FILE",
                        help="also write findings as JSON to FILE")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="Layer-3 baseline file (default: the committed "
                             "repro/lint/deep_baseline.json)")
    p_lint.add_argument("--self-check", action="store_true",
                        help="prove every Layer-3 rule fires on a seeded "
                             "synthetic violation, then exit")
    p_lint.set_defaults(func=_cmd_lint)

    p_obs = sub.add_parser(
        "obs",
        help="observability: summary / compare / profile / ingest / "
             "trend / timeline / speedup / dashboard / tail / watch / "
             "watchdog")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_summary = obs_sub.add_parser(
        "summary", help="where one traced run spent its time")
    p_obs_summary.add_argument(
        "run",
        help="a run-<id>.json manifest, a run-<id>.checkpoint.json from "
             "a crashed run, or an events-<id>.jsonl stream")
    p_obs_summary.add_argument("--top", type=int, default=15, metavar="N",
                               help="span paths to show (default 15)")
    p_obs_summary.set_defaults(func=_cmd_obs_summary)
    p_obs_compare = obs_sub.add_parser(
        "compare", help="per-span wall-time deltas between two runs")
    p_obs_compare.add_argument("base", help="baseline run-<id>.json")
    p_obs_compare.add_argument("other", help="candidate run-<id>.json")
    p_obs_compare.add_argument("--fail-over", type=float, default=None,
                               metavar="PCT",
                               help="exit non-zero when any span path is "
                                    "slower than +PCT%%")
    p_obs_compare.add_argument("--min-wall", type=float, default=25.0,
                               metavar="MS",
                               help="ignore span paths under MS wall ms on "
                                    "both sides (default 25)")
    p_obs_compare.add_argument("--top", type=int, default=20, metavar="N",
                               help="span paths to show (default 20)")
    p_obs_compare.set_defaults(func=_cmd_obs_compare)
    p_obs_profile = obs_sub.add_parser(
        "profile",
        help="span-aware function profile of one experiment or the world "
             "build")
    p_obs_profile.add_argument(
        "target", help="an experiment name (see `repro list`) or 'world'")
    p_obs_profile.add_argument("--small", action="store_true",
                               help="use the reduced test-scale world")
    p_obs_profile.add_argument("--top", type=int, default=8, metavar="N",
                               help="span paths / functions per table "
                                    "(default 8)")
    p_obs_profile.add_argument("--trace", metavar="DIR",
                               help="also write the manifest (profile "
                                    "embedded) into DIR")
    p_obs_profile.set_defaults(func=_cmd_obs_profile)
    p_obs_memory = obs_sub.add_parser(
        "memory",
        help="allocation profile + structure census of a --memory run")
    p_obs_memory.add_argument("run", help="a run-<id>.json manifest")
    p_obs_memory.add_argument("--top", type=int, default=12, metavar="N",
                              help="span paths / allocation sites / census "
                                   "rows per table (default 12)")
    p_obs_memory.set_defaults(func=_cmd_obs_memory)
    p_obs_ingest = obs_sub.add_parser(
        "ingest",
        help="append run manifests / BENCH_obs.json to the trend history")
    p_obs_ingest.add_argument("files", nargs="+",
                              help="run-<id>.json or BENCH_obs.json files")
    p_obs_ingest.add_argument("--history", default="obs/history",
                              metavar="DIR",
                              help="history directory (default obs/history)")
    p_obs_ingest.set_defaults(func=_cmd_obs_ingest)
    p_obs_trend = obs_sub.add_parser(
        "trend", help="sparkline wall-time trends over the ingested history")
    p_obs_trend.add_argument("--history", default="obs/history",
                             metavar="DIR",
                             help="history directory (default obs/history)")
    p_obs_trend.add_argument("--gate", action="store_true",
                             help="exit non-zero when the latest run "
                                  "regresses past the median+MAD threshold")
    p_obs_trend.add_argument("--window", type=int, default=20, metavar="N",
                             help="history window per metric (default 20)")
    p_obs_trend.add_argument("--top", type=int, default=12, metavar="N",
                             help="metrics shown per label (default 12)")
    p_obs_trend.add_argument("--mad-k", type=float, default=4.0,
                             metavar="K",
                             help="MAD multiplier in the threshold "
                                  "(default 4.0)")
    p_obs_trend.add_argument("--min-rel", type=float, default=25.0,
                             metavar="PCT",
                             help="relative floor of the threshold "
                                  "(default 25%%)")
    p_obs_trend.add_argument("--min-wall", type=float, default=25.0,
                             metavar="MS",
                             help="ignore metrics under MS on both sides "
                                  "(default 25)")
    p_obs_trend.set_defaults(func=_cmd_obs_trend)
    p_obs_timeline = obs_sub.add_parser(
        "timeline",
        help="per-worker Gantt timeline and parallel overhead attribution")
    p_obs_timeline.add_argument("run", help="a run-<id>.json manifest")
    p_obs_timeline.add_argument("--width", type=int, default=64, metavar="N",
                                help="Gantt lane width in cells (default 64)")
    p_obs_timeline.add_argument("--json", default=None, metavar="OUT",
                                help="additionally write the timeline as "
                                     "JSON to OUT")
    p_obs_timeline.set_defaults(func=_cmd_obs_timeline)
    p_obs_speedup = obs_sub.add_parser(
        "speedup",
        help="serial-vs-parallel crossover analysis over the bench history")
    p_obs_speedup.add_argument("--history", default="obs/history",
                               metavar="DIR",
                               help="trend history directory "
                                    "(default obs/history)")
    p_obs_speedup.add_argument("--config", dest="config_filter",
                               metavar="NAME", default=None,
                               help="only analyse groups for this world "
                                    "preset (e.g. large)")
    p_obs_speedup.add_argument("--gate", action="store_true",
                               help="exit non-zero when a group's latest "
                                    "speedup falls below its history")
    p_obs_speedup.add_argument("--tol", type=float, default=20.0,
                               metavar="PCT",
                               help="gate tolerance below the median "
                                    "(default 20%%)")
    p_obs_speedup.add_argument("--pair", nargs=2, default=None,
                               metavar=("SERIAL", "PARALLEL"),
                               help="compare two run manifests of the same "
                                    "workload instead of the history")
    p_obs_speedup.set_defaults(func=_cmd_obs_speedup)
    p_obs_dash = obs_sub.add_parser(
        "dashboard",
        help="combined report for one run: spans, profile, health, trends")
    p_obs_dash.add_argument(
        "run",
        help="a run-<id>.json manifest, checkpoint, or events JSONL")
    p_obs_dash.add_argument("--history", default=None, metavar="DIR",
                            help="also render trend sparklines from DIR")
    p_obs_dash.add_argument("--html", default=None, metavar="OUT",
                            help="additionally write a static HTML page "
                                 "to OUT")
    p_obs_dash.add_argument("--top", type=int, default=10, metavar="N",
                            help="rows per table (default 10)")
    p_obs_dash.add_argument("--lint", default=None, metavar="FILE",
                            help="render a static-analysis section from a "
                                 "`repro lint --json` findings file")
    p_obs_dash.set_defaults(func=_cmd_obs_dashboard)
    p_obs_tail = obs_sub.add_parser(
        "tail",
        help="follow a live event stream (torn-tail tolerant)")
    p_obs_tail.add_argument("target",
                            help="a trace directory or an "
                                 "events-<id>.jsonl file")
    p_obs_tail.add_argument("--until-end", action="store_true",
                            help="exit 0 on run_end, 1 on --timeout "
                                 "(for CI babysitting)")
    p_obs_tail.add_argument("--once", action="store_true",
                            help="print the current stream contents and "
                                 "exit without following")
    p_obs_tail.add_argument("--timeout", type=float, default=None,
                            metavar="S",
                            help="stop following after S seconds")
    p_obs_tail.add_argument("--poll", type=float, default=0.25, metavar="S",
                            help="poll interval in seconds (default 0.25)")
    p_obs_tail.add_argument("--wait", type=float, default=10.0, metavar="S",
                            help="wait up to S seconds for the stream file "
                                 "to appear (default 10)")
    p_obs_tail.set_defaults(func=_cmd_obs_tail)
    p_obs_watch = obs_sub.add_parser(
        "watch",
        help="live dashboard: span stack, %% complete vs history, ETA, "
             "per-worker liveness")
    p_obs_watch.add_argument("target",
                             help="a trace directory or an "
                                  "events-<id>.jsonl file")
    p_obs_watch.add_argument("--history", default="obs/history",
                             metavar="DIR",
                             help="trend history for the progress/ETA "
                                  "model (default obs/history)")
    p_obs_watch.add_argument("--interval", type=float, default=1.0,
                             metavar="S",
                             help="refresh interval in seconds (default 1)")
    p_obs_watch.add_argument("--once", action="store_true",
                             help="render one frame and exit")
    p_obs_watch.add_argument("--wait", type=float, default=10.0, metavar="S",
                             help="wait up to S seconds for the stream file "
                                  "to appear (default 10)")
    p_obs_watch.set_defaults(func=_cmd_obs_watch)
    p_obs_wd = obs_sub.add_parser(
        "watchdog",
        help="stall detection: open spans past their historical budget, "
             "heartbeat gaps, hung workers")
    p_obs_wd.add_argument("target",
                          help="a trace directory or an "
                               "events-<id>.jsonl file")
    p_obs_wd.add_argument("--history", default="obs/history", metavar="DIR",
                          help="trend history for span budgets "
                               "(default obs/history)")
    p_obs_wd.add_argument("--gate", action="store_true",
                          help="exit non-zero on any error finding")
    p_obs_wd.add_argument("--hb-gap", type=float, default=10.0, metavar="S",
                          help="max seconds of total event silence "
                               "(default 10)")
    p_obs_wd.add_argument("--worker-gap", type=float, default=30.0,
                          metavar="S",
                          help="max seconds a worker may sit inside one "
                               "task (default 30)")
    p_obs_wd.add_argument("--mad-k", type=float, default=4.0, metavar="K",
                          help="MAD multiplier over the historical p95 "
                               "(default 4.0, matching obs trend)")
    p_obs_wd.add_argument("--min-budget", type=float, default=250.0,
                          metavar="MS",
                          help="floor on any span budget (default 250ms)")
    p_obs_wd.set_defaults(func=_cmd_obs_watchdog)

    p_explain = sub.add_parser(
        "explain",
        help="decision provenance: why a client landed at a site "
             "(client / diff / catchment)")
    explain_sub = p_explain.add_subparsers(dest="explain_command",
                                           required=True)
    p_ex_client = explain_sub.add_parser(
        "client",
        help="end-to-end journey of one probe: DNS decision, per-AS "
             "selection trail, forwarding hops, landing site")
    p_ex_client.add_argument("probe", type=int, help="probe id")
    p_ex_client.add_argument("--mode", choices=["regional", "global", "both"],
                             default="both",
                             help="deployment(s) to explain (default both)")
    p_ex_client.add_argument("--small", action="store_true",
                             help="use the reduced test-scale world")
    p_ex_client.add_argument("--trace", metavar="DIR",
                             help="write a run manifest with the journeys "
                                  "embedded into DIR")
    p_ex_client.set_defaults(func=_cmd_explain_client)
    p_ex_diff = explain_sub.add_parser(
        "diff",
        help="catchment diff of two prefixes; attributes each flipped "
             "client to the AS decision that changed (sec5.4)")
    p_ex_diff.add_argument("a", help="address/prefix, or the pair "
                                     "'global regional' for the sec5.4 "
                                     "per-client comparison")
    p_ex_diff.add_argument("b", help="address/prefix (or 'regional')")
    p_ex_diff.add_argument("--small", action="store_true",
                           help="use the reduced test-scale world")
    p_ex_diff.add_argument("--examples", type=int, default=3, metavar="N",
                           help="example flips shown per case (default 3)")
    p_ex_diff.add_argument("--trace", metavar="DIR",
                           help="write a run manifest with the diff "
                                "embedded into DIR")
    p_ex_diff.set_defaults(func=_cmd_explain_diff)
    p_ex_catch = explain_sub.add_parser(
        "catchment",
        help="catchment summary of one prefix with winner-tier breakdown")
    p_ex_catch.add_argument("prefix", help="an address inside the prefix")
    p_ex_catch.add_argument("--small", action="store_true",
                            help="use the reduced test-scale world")
    p_ex_catch.set_defaults(func=_cmd_explain_catchment)

    p_cache = sub.add_parser(
        "cache", help="persistent routing-table cache: stats / clear")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cache_stats = cache_sub.add_parser(
        "stats", help="entry count and size of the on-disk cache")
    p_cache_stats.add_argument("--dir", metavar="DIR",
                               help="cache directory (default: "
                                    "REPRO_CACHE_DIR or ~/.cache/repro)")
    p_cache_stats.set_defaults(func=_cmd_cache)
    p_cache_clear = cache_sub.add_parser(
        "clear", help="delete every cached routing table")
    p_cache_clear.add_argument("--dir", metavar="DIR",
                               help="cache directory (default: "
                                    "REPRO_CACHE_DIR or ~/.cache/repro)")
    p_cache_clear.set_defaults(func=_cmd_cache)

    p_digest = sub.add_parser(
        "digest",
        help="routing-table digest over the announced prefixes "
             "(serial/parallel equality check)")
    p_digest.add_argument("--small", action="store_true",
                          help="use the reduced test-scale world")
    _add_config_argument(p_digest)
    p_digest.add_argument("--cache-dir", metavar="DIR",
                          help="persist routing tables under DIR "
                               "(see also REPRO_CACHE_DIR)")
    p_digest.set_defaults(func=_cmd_digest)

    p_demo = sub.add_parser("demo", help="run a micro-case standalone")
    p_demo.add_argument("case", choices=["fig1", "fig7"])
    p_demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
