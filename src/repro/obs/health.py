"""Domain-level health gauges for instrumented runs.

Spans and counters say where the time went; *health gauges* say whether
the run it produced is any good.  At the end of an instrumented run,
:func:`record_health` computes a small set of domain-level indicators
from the world that just ran and attaches them to the recording as
``health.*`` gauges, so every run manifest carries a quality fingerprint
next to its performance fingerprint:

- ``health.routing.cache_hit_rate`` — fraction of routing-table lookups
  served from the per-topology-version cache (the pipeline's main
  shared-work lever);
- ``health.catchment.<deployment>.<region>.sites`` — distinct origin
  sites actually serving each region's prefix (a silently collapsed
  catchment is how reproductions rot);
- ``health.dns.mapping.*`` — Table-2-style mapping-accuracy fractions
  for the Imperva-6 hostname set under LDNS;
- ``health.claims.passed`` / ``health.claims.total`` — the paper-claim
  scorecard, as numbers a dashboard can plot.

The heavy imports (experiments, analysis) happen inside the functions:
the obs package stays import-light, and no cycle forms with the modules
it measures.  ``repro obs dashboard`` re-reads these gauges from the
manifest via :func:`health_gauges` — computing them costs nothing extra
when the run already measured everything (world caches are shared).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.world import World
    from repro.obs.manifest import RunManifest

#: Gauge-name prefix shared by everything this module emits.
HEALTH_PREFIX = "health."


def routing_health(world: "World") -> dict[str, float]:
    """Cache effectiveness of the shared routing engine."""
    engine = world.engine.routing
    hits, misses = engine.cache_stats()
    return {
        "health.routing.cache_hit_rate": engine.cache_hit_rate(),
        "health.routing.cache_lookups": float(hits + misses),
        "health.routing.tables_computed": float(misses),
    }


def catchment_health(world: "World") -> dict[str, float]:
    """Distinct serving sites per deployment region (plus the globals)."""
    gauges: dict[str, float] = {}
    regional = {
        "im6": world.imperva.im6,
        "eg3": world.edgio.eg3,
        "eg4": world.edgio.eg4,
    }
    for dep_name, deployment in regional.items():
        for region in deployment.region_names:
            table = world.engine.table_for(deployment.address_of_region(region))
            sites = 0
            if table is not None:
                sites = len({c.primary.origin for c in table.best.values()})
            gauges[f"health.catchment.{dep_name}.{region}.sites"] = float(sites)
    table = world.engine.table_for(world.imperva.ns.address)
    if table is not None:
        gauges["health.catchment.ns.sites"] = float(
            len({c.primary.origin for c in table.best.values()})
        )
    return gauges


def dns_health(world: "World") -> dict[str, float]:
    """Overall Table-2 mapping fractions for Imperva-6 under LDNS."""
    from repro.analysis.mapping import MappingClass
    from repro.dnssim.resolver import DnsMode
    from repro.experiments.table2 import mapping_efficiency

    efficiency = mapping_efficiency(
        world, world.imperva.im6, world.im6_service, DnsMode.LDNS
    )
    groups = efficiency.groups
    total = len(groups)
    gauges: dict[str, float] = {"health.dns.groups_classified": float(total)}
    keys = {
        MappingClass.EFFICIENT: "health.dns.mapping.efficient",
        MappingClass.REGION_SUBOPTIMAL: "health.dns.mapping.suboptimal",
        MappingClass.WRONG_REGION: "health.dns.mapping.wrong_region",
    }
    for outcome, key in keys.items():
        count = sum(1 for g in groups if g.outcome is outcome)
        gauges[key] = count / total if total else 0.0
    return gauges


def claims_health(world: "World") -> dict[str, float]:
    """Paper-claim scorecard pass/fail counts."""
    from repro.experiments.claims import verify_claims

    outcomes = verify_claims(world)
    passed = sum(1 for o in outcomes if o.passed)
    return {
        "health.claims.passed": float(passed),
        "health.claims.failed": float(len(outcomes) - passed),
        "health.claims.total": float(len(outcomes)),
    }


def collect_health(
    world: "World", *, include_claims: bool = True
) -> dict[str, float]:
    """All health gauges for one world, sorted by name.

    ``include_claims=False`` skips the scorecard — the one component
    that *runs* experiments rather than reusing what already ran, so
    partial runs (``repro run table3 --trace ...``) stay cheap.
    """
    gauges: dict[str, float] = {}
    gauges.update(routing_health(world))
    gauges.update(catchment_health(world))
    gauges.update(dns_health(world))
    if include_claims:
        gauges.update(claims_health(world))
    return dict(sorted(gauges.items()))


def record_health(
    world: "World", *, include_claims: bool = True
) -> dict[str, float]:
    """Compute health gauges under an ``obs.health`` span and emit them."""
    with obs.span("obs.health"):
        gauges = collect_health(world, include_claims=include_claims)
        for name, value in gauges.items():
            obs.gauge.set(name, value)
    return gauges


def health_gauges(manifest: "RunManifest") -> dict[str, float]:
    """The ``health.*`` gauges a traced run recorded, by name."""
    return {
        name: value
        for name, value in sorted(manifest.gauges().items())
        if name.startswith(HEALTH_PREFIX)
    }


def render_health(gauges: dict[str, float]) -> str:
    """Terminal table of health gauges (pass/fail summary first)."""
    if not gauges:
        return ("no health gauges recorded (trace a run with "
                "`repro run --trace DIR`)")
    lines = []
    passed = gauges.get("health.claims.passed")
    total = gauges.get("health.claims.total")
    if passed is not None and total:
        mark = "ok" if passed >= total else "FAIL"
        lines.append(f"claims    {passed:.0f}/{total:.0f} hold  [{mark}]")
    hit_rate = gauges.get("health.routing.cache_hit_rate")
    if hit_rate is not None:
        lines.append(f"routing   cache hit rate {100.0 * hit_rate:.1f}%")
    width = max(len(name) for name in gauges)
    lines.append("")
    for name, value in gauges.items():
        shown = int(value) if value == int(value) else round(value, 4)
        lines.append(f"  {name:{width}}  {shown}")
    return "\n".join(lines)
