"""Run manifests: who ran what, with which seeds, and where time went.

A :class:`RunManifest` is the durable artifact of one instrumented run:
the experiment config name and every seed it carries, the git commit of
the working tree, the CLI argv, and the full recorded span tree with its
counters and gauges.  ``repro obs summary`` and ``repro obs compare``
consume these files; CI archives them so performance regressions between
PRs are a file diff, not a guess.

The :func:`tracing` context manager is the one-liner the CLI layers use:
it installs a recorder, streams span events to ``events-<id>.jsonl``, and
writes ``run-<id>.json`` into the trace directory on the way out.
"""

from __future__ import annotations

import itertools
import json
import os
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields, is_dataclass
from pathlib import Path
from typing import Iterator

from repro.obs import recorder as _recorder
from repro.obs.events import JsonlEventSink
from repro.obs.memory import MemoryProfiler, memory_payload
from repro.obs.prof import ProfileData, SpanProfiler
from repro.obs.recorder import Recorder, SpanRecord

#: Manifest schema version; bump on breaking layout changes.
SCHEMA_VERSION = 1

#: Per-process run-id disambiguator (two runs in the same second).
_RUN_SEQ = itertools.count(1)


def new_run_id() -> str:
    """A unique, sortable run id: UTC stamp + pid + per-process sequence."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"{stamp}-p{os.getpid()}-{next(_RUN_SEQ)}"


def current_git_sha(cwd: Path | None = None) -> str | None:
    """HEAD of the checkout this package runs from, or None outside git."""
    where = cwd or Path(__file__).resolve().parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=where,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def seeds_of(config: object) -> dict[str, int]:
    """Every ``*seed*`` integer field on a dataclass config, one level deep.

    Works on any config shaped like ``repro.experiments.config
    .ExperimentConfig`` without importing it — the obs core stays
    dependency-free.
    """
    seeds: dict[str, int] = {}

    def collect(prefix: str, obj: object) -> None:
        if not is_dataclass(obj) or isinstance(obj, type):
            return
        for spec in fields(obj):
            value = getattr(obj, spec.name, None)
            key = f"{prefix}{spec.name}"
            if "seed" in spec.name and isinstance(value, int):
                seeds[key] = value
            elif is_dataclass(value) and not isinstance(value, type):
                collect(f"{key}.", value)

    collect("", config)
    return seeds


@dataclass
class RunManifest:
    """Everything needed to interpret (and re-run) one recorded run."""

    run_id: str
    label: str
    config_name: str | None
    seeds: dict[str, int]
    git_sha: str | None
    argv: list[str]
    root: SpanRecord
    #: Function-level profile (repro.obs.prof), when the run was profiled.
    profile: ProfileData | None = None
    #: Decision-provenance payload (repro.explain journeys/diffs), when
    #: the run captured any.  Kept as plain data so loading a manifest
    #: never imports the explain subsystem.
    explain: dict[str, object] | None = None
    #: Memory payload (repro.obs.memory: allocation profile + structure
    #: census), when the run was captured with ``--memory``.  Plain data
    #: with ``{"schema", "profile", "census"}`` keys.
    memory: dict[str, object] | None = None
    #: True for crash-safe checkpoints and manifests reconstructed from
    #: the event stream of a killed run: the span tree is partial and
    #: unclosed spans carry ``status="open"``.
    incomplete: bool = False

    def counters(self) -> dict[str, float]:
        """Counter totals over the whole span tree."""
        return self.root.subtree_counters()

    def gauges(self) -> dict[str, float]:
        """Gauge values over the whole tree (last write along walk wins)."""
        values: dict[str, float] = {}
        for _, record in self.root.walk():
            values.update(record.gauges)
        return values

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "schema": SCHEMA_VERSION,
            "run_id": self.run_id,
            "label": self.label,
            "config_name": self.config_name,
            "seeds": dict(self.seeds),
            "git_sha": self.git_sha,
            "argv": list(self.argv),
            "spans": self.root.to_dict(),
        }
        if self.profile is not None:
            data["profile"] = self.profile.to_dict()
        if self.explain is not None:
            data["explain"] = self.explain
        if self.memory is not None:
            data["memory"] = self.memory
        if self.incomplete:
            data["incomplete"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RunManifest":
        spans = data.get("spans")
        if not isinstance(spans, dict):
            raise ValueError("manifest has no 'spans' tree")
        seeds = data.get("seeds", {})
        argv = data.get("argv", [])
        raw_profile = data.get("profile")
        profile = (
            ProfileData.from_dict(raw_profile)
            if isinstance(raw_profile, dict) else None
        )
        raw_explain = data.get("explain")
        explain = raw_explain if isinstance(raw_explain, dict) else None
        raw_memory = data.get("memory")
        memory = raw_memory if isinstance(raw_memory, dict) else None
        return cls(
            run_id=str(data.get("run_id", "")),
            label=str(data.get("label", "run")),
            config_name=(None if data.get("config_name") is None
                         else str(data.get("config_name"))),
            seeds={str(k): int(v)  # type: ignore[call-overload]
                   for k, v in dict(seeds).items()},  # type: ignore[call-overload]
            git_sha=(None if data.get("git_sha") is None
                     else str(data.get("git_sha"))),
            argv=[str(a) for a in argv] if isinstance(argv, list) else [],
            root=SpanRecord.from_dict(spans),
            profile=profile,
            explain=explain,
            memory=memory,
            incomplete=bool(data.get("incomplete", False)),
        )


def from_recorder(
    recorder: Recorder,
    *,
    config: object = None,
    run_id: str | None = None,
    argv: list[str] | None = None,
) -> RunManifest:
    """Freeze a recorder into a manifest (stamps the root totals)."""
    recorder.finish()
    profile: ProfileData | None = None
    if recorder.profiler is not None:
        recorder.profiler.stop()
        profile = recorder.profiler.snapshot()
    memory: dict[str, object] | None = None
    if recorder.memory is not None or recorder.memory_census is not None:
        if recorder.memory is not None:
            recorder.memory.stop()
        memory = memory_payload(
            recorder.memory.snapshot() if recorder.memory is not None
            else None
        )
        if recorder.memory_census is not None:
            memory["census"] = recorder.memory_census
    return RunManifest(
        run_id=run_id or new_run_id(),
        label=recorder.root.name,
        config_name=getattr(config, "name", None),
        seeds=seeds_of(config) if config is not None else {},
        git_sha=current_git_sha(),
        argv=list(argv or []),
        root=recorder.root,
        profile=profile,
        explain=recorder.explain_data,
        memory=memory,
    )


def write_manifest(manifest: RunManifest, directory: Path | str) -> Path:
    """Write ``run-<id>.json`` into ``directory`` (created if missing)."""
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"run-{manifest.run_id}.json"
    path.write_text(
        json.dumps(manifest.to_dict(), indent=2, default=str) + "\n",
        encoding="utf-8",
    )
    return path


def load_manifest(path: Path | str) -> RunManifest:
    """Read a manifest previously written by :func:`write_manifest`."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"not a run manifest: {path}")
    return RunManifest.from_dict(data)


@contextmanager
def tracing(
    trace_dir: Path | str | None,
    *,
    label: str = "run",
    config: object = None,
    argv: list[str] | None = None,
    profiler: SpanProfiler | None = None,
    memory: MemoryProfiler | None = None,
    heartbeat_every_s: float | None = None,
    checkpoint_every_s: float = 5.0,
) -> Iterator[Recorder | None]:
    """Record the block and export ``run-<id>.json`` + event JSONL.

    ``trace_dir=None`` disables tracing entirely (yields None), so CLI
    code can wrap its work unconditionally::

        with tracing(args.trace, label="repro-run", config=cfg) as rec:
            ...
        if rec is not None:
            print(rec.manifest_path)

    A ``profiler`` (see :mod:`repro.obs.prof`) or ``memory`` profiler
    (see :mod:`repro.obs.memory`) is started on entry, stopped on exit,
    and its snapshot is embedded in the manifest.  With
    ``trace_dir=None`` but a profiler given, the block is still recorded
    (so the profiler can group by span path) — only the file export is
    skipped; ``manifest_path`` stays None.  An active ``memory``
    profiler forces parallel entry points serial for the duration (see
    :func:`repro.par.pool.capture_blocks_parallel`).

    With a trace directory the run is *live-observable* end to end
    (see :mod:`repro.obs.live`): the event stream opens with a
    run-header and closes with a ``run_end`` sentinel, heartbeats are
    emitted every ``heartbeat_every_s`` (default 1s; 0 disables), a
    crash-safe checkpoint manifest ``run-<id>.checkpoint.json`` is
    flushed at least every ``checkpoint_every_s`` (removed once the
    real manifest lands), and the worker heartbeat side-channel dir
    ``hb-<run_id>/`` is installed for any pool forked inside the block.

    Whatever recorder was installed before is restored afterwards.
    """
    if trace_dir is None and profiler is None and memory is None:
        yield None
        return
    # Lazy import: live builds on manifest (RunManifest, seeds_of), so
    # manifest must not import live at module load.
    from repro.obs import live as _live

    run_id = new_run_id()
    sink: JsonlEventSink | None = None
    out_dir: Path | None = None
    checkpoint: "_live.CheckpointWriter | None" = None
    previous_hb_dir: Path | None = None
    hb_dir_set = False
    if trace_dir is not None:
        out_dir = Path(trace_dir)
        sink = JsonlEventSink(out_dir / f"events-{run_id}.jsonl")
        checkpoint = _live.CheckpointWriter(
            out_dir, run_id, config=config, argv=argv,
            every_s=checkpoint_every_s,
        )
        previous_hb_dir = _live.set_worker_heartbeat_dir(
            out_dir / f"hb-{run_id}"
        )
        hb_dir_set = True
    run_info: dict[str, object] = {"run_id": run_id}
    config_name = getattr(config, "name", None)
    if config_name is not None:
        run_info["config"] = config_name
    recorder = Recorder(label, event_sink=sink, profiler=profiler,
                        memory=memory, run_info=run_info,
                        heartbeat_every_s=heartbeat_every_s)
    recorder.checkpoint = checkpoint
    if checkpoint is not None:
        # An immediate first checkpoint: even a run killed seconds in
        # leaves a loadable (if nearly empty) manifest behind.
        checkpoint.maybe_write(recorder, force=True)
    previous = _recorder.active()
    _recorder.install(recorder)
    if profiler is not None:
        profiler.start()
    if memory is not None:
        memory.start()
    try:
        yield recorder
    finally:
        _recorder.install(previous)
        if hb_dir_set:
            _live.set_worker_heartbeat_dir(previous_hb_dir)
        if memory is not None:
            memory.stop()
        if profiler is not None:
            profiler.stop()
        manifest = from_recorder(recorder, config=config, run_id=run_id, argv=argv)
        if out_dir is not None:
            recorder.manifest_path = write_manifest(manifest, out_dir)
            if checkpoint is not None:
                # The full manifest supersedes the crash checkpoint.
                checkpoint.remove()
