"""Summaries, A/B comparisons, and the run dashboard over manifests.

``repro obs summary`` answers "where did this run spend its time" (top-N
span paths by *self* time — wall time not attributed to a child span —
plus counter and gauge tables).  ``repro obs compare`` lines two runs up
span-path by span-path and reports the wall-time deltas; with a
``fail_over_pct`` threshold it flags regressions, which is what turns a
pair of manifests into a CI gate.  ``repro obs dashboard`` composes the
full picture for one run — span hotspots, profiler top functions, health
gauges, and trend sparklines — as a terminal report or a static HTML
page.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass
from pathlib import Path

from repro.obs.manifest import RunManifest
from repro.obs.recorder import SpanRecord


@dataclass(frozen=True)
class SpanStat:
    """Aggregate of every span sharing one tree path."""

    path: str
    calls: int
    wall_ms: float
    self_ms: float
    cpu_ms: float


def aggregate_spans(root: SpanRecord) -> dict[str, SpanStat]:
    """Per-path totals over a span tree (paths are slash-joined names)."""
    sums: dict[str, list[float]] = {}
    for path, record in root.walk():
        entry = sums.setdefault(path, [0.0, 0.0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record.wall_ms
        entry[2] += record.self_wall_ms
        entry[3] += record.cpu_ms
    return {
        path: SpanStat(path=path, calls=int(entry[0]), wall_ms=entry[1],
                       self_ms=entry[2], cpu_ms=entry[3])
        for path, entry in sums.items()
    }


def _fmt_ms(value: float) -> str:
    return f"{value:10.1f}"


def render_summary(manifest: RunManifest, top: int = 15) -> str:
    """The human-readable report for one manifest."""
    lines = [
        f"run       {manifest.run_id}",
        f"label     {manifest.label}",
        f"config    {manifest.config_name or '-'}",
        f"git       {manifest.git_sha or '-'}",
        f"wall      {manifest.root.wall_ms / 1000.0:.2f}s  "
        f"(cpu {manifest.root.cpu_ms / 1000.0:.2f}s)",
    ]
    if manifest.incomplete:
        lines.append(
            "state     INCOMPLETE — partial tree from a crashed or "
            "still-running recording; unclosed spans are marked [open]"
        )
    if manifest.seeds:
        seeds = ", ".join(f"{k}={v}" for k, v in sorted(manifest.seeds.items()))
        lines.append(f"seeds     {seeds}")
    stats = sorted(
        aggregate_spans(manifest.root).values(),
        key=lambda s: (-s.self_ms, s.path),
    )
    shown = stats[:top]
    width = max((len(s.path) for s in shown), default=4)
    lines += [
        "",
        f"top {len(shown)} span paths by self time:",
        f"  {'path':{width}}  {'calls':>6}  {'wall ms':>10}  "
        f"{'self ms':>10}  {'cpu ms':>10}",
    ]
    for stat in shown:
        lines.append(
            f"  {stat.path:{width}}  {stat.calls:6d}  {_fmt_ms(stat.wall_ms)}  "
            f"{_fmt_ms(stat.self_ms)}  {_fmt_ms(stat.cpu_ms)}"
        )
    counters = manifest.counters()
    if counters:
        lines += ["", "counters:"]
        cwidth = max(len(name) for name in counters)
        for name in sorted(counters):
            value = counters[name]
            shown_value = int(value) if value == int(value) else round(value, 3)
            lines.append(f"  {name:{cwidth}}  {shown_value}")
    gauges = manifest.gauges()
    if gauges:
        lines += ["", "gauges:"]
        gwidth = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:{gwidth}}  {gauges[name]:g}")
    return "\n".join(lines)


def render_span_tree(
    root: SpanRecord,
    *,
    max_depth: int = 6,
    min_wall_ms: float = 0.5,
) -> str:
    """Indented span tree with wall/self times, pre-order.

    Children under ``min_wall_ms`` are folded into a single summary
    line so deep traces stay readable.
    """
    lines = [f"{'span':52}  {'wall ms':>10}  {'self ms':>10}  {'cpu ms':>10}"]

    def emit(record: SpanRecord, depth: int) -> None:
        name = f"{'  ' * depth}{record.name}"
        flag = "" if record.status == "ok" else f"  [{record.status}]"
        lines.append(
            f"{name:52}  {record.wall_ms:10.1f}  {record.self_wall_ms:10.1f}"
            f"  {record.cpu_ms:10.1f}{flag}"
        )
        if depth >= max_depth:
            if record.children:
                lines.append(f"{'  ' * (depth + 1)}... "
                             f"({len(record.children)} child span(s))")
            return
        hidden = 0
        hidden_ms = 0.0
        for child in record.children:
            if child.wall_ms < min_wall_ms:
                hidden += 1
                hidden_ms += child.wall_ms
                continue
            emit(child, depth + 1)
        if hidden:
            pad = "  " * (depth + 1)
            lines.append(f"{pad}({hidden} span(s) under {min_wall_ms:g} ms, "
                         f"{hidden_ms:.1f} ms total)")

    emit(root, 0)
    return "\n".join(lines)


@dataclass(frozen=True)
class SpanDelta:
    """Wall-time movement of one span path between two runs."""

    path: str
    base_ms: float
    other_ms: float

    @property
    def delta_ms(self) -> float:
        return self.other_ms - self.base_ms

    @property
    def delta_pct(self) -> float | None:
        """Relative change; None when the base had no time at this path."""
        if self.base_ms <= 0.0:
            return None
        return 100.0 * (self.other_ms - self.base_ms) / self.base_ms

    def regressed(self, fail_over_pct: float, min_wall_ms: float) -> bool:
        """True when the other run is slower beyond the threshold.

        Tiny spans (both sides under ``min_wall_ms``) are noise and never
        count; span paths absent from the base run are reported but do
        not fail the comparison.
        """
        if max(self.base_ms, self.other_ms) < min_wall_ms:
            return False
        pct = self.delta_pct
        return pct is not None and pct > fail_over_pct


def compare_manifests(
    base: RunManifest, other: RunManifest
) -> list[SpanDelta]:
    """Per-span-path wall-time deltas, largest absolute movement first."""
    base_stats = aggregate_spans(base.root)
    other_stats = aggregate_spans(other.root)
    paths = set(base_stats) | set(other_stats)
    deltas = [
        SpanDelta(
            path=path,
            base_ms=base_stats[path].wall_ms if path in base_stats else 0.0,
            other_ms=other_stats[path].wall_ms if path in other_stats else 0.0,
        )
        for path in sorted(paths)
    ]
    deltas.sort(key=lambda d: (-abs(d.delta_ms), d.path))
    return deltas


def counter_deltas(
    base: RunManifest, other: RunManifest
) -> dict[str, tuple[float, float]]:
    """``name -> (base, other)`` for every counter that moved."""
    a, b = base.counters(), other.counters()
    moved: dict[str, tuple[float, float]] = {}
    for name in sorted(set(a) | set(b)):
        pair = (a.get(name, 0.0), b.get(name, 0.0))
        if pair[0] != pair[1]:  # repro-lint: disable=float-equality
            moved[name] = pair
    return moved


def render_compare(
    base: RunManifest,
    other: RunManifest,
    deltas: list[SpanDelta],
    *,
    fail_over_pct: float | None = None,
    min_wall_ms: float = 25.0,
    top: int = 20,
) -> tuple[str, list[SpanDelta]]:
    """The comparison report plus the regressions past the threshold."""
    lines = [
        f"base   {base.run_id}  ({base.config_name or '-'}, "
        f"{base.root.wall_ms / 1000.0:.2f}s)",
        f"other  {other.run_id}  ({other.config_name or '-'}, "
        f"{other.root.wall_ms / 1000.0:.2f}s)",
    ]
    if base.git_sha != other.git_sha:
        lines.append(f"git    {base.git_sha or '-'} -> {other.git_sha or '-'}")
    shown = deltas[:top]
    width = max((len(d.path) for d in shown), default=4)
    lines += [
        "",
        f"top {len(shown)} span paths by |delta|:",
        f"  {'path':{width}}  {'base ms':>10}  {'other ms':>10}  "
        f"{'delta ms':>10}  {'delta %':>8}",
    ]
    for delta in shown:
        pct = delta.delta_pct
        pct_text = f"{pct:+7.1f}%" if pct is not None else "    new "
        lines.append(
            f"  {delta.path:{width}}  {_fmt_ms(delta.base_ms)}  "
            f"{_fmt_ms(delta.other_ms)}  {delta.delta_ms:+10.1f}  {pct_text}"
        )
    moved = counter_deltas(base, other)
    if moved:
        lines += ["", "counters that moved:"]
        cwidth = max(len(name) for name in moved)
        for name, (a_val, b_val) in moved.items():
            lines.append(f"  {name:{cwidth}}  {a_val:g} -> {b_val:g}")
    regressions: list[SpanDelta] = []
    if fail_over_pct is not None:
        regressions = [
            d for d in deltas if d.regressed(fail_over_pct, min_wall_ms)
        ]
        lines.append("")
        if regressions:
            lines.append(
                f"REGRESSION: {len(regressions)} span path(s) slower than "
                f"+{fail_over_pct:g}% (min {min_wall_ms:g} ms):"
            )
            for delta in regressions:
                pct = delta.delta_pct
                lines.append(
                    f"  {delta.path}: {delta.base_ms:.1f} ms -> "
                    f"{delta.other_ms:.1f} ms ({pct:+.1f}%)"
                )
        else:
            lines.append(
                f"ok: no span path regressed beyond +{fail_over_pct:g}% "
                f"(min {min_wall_ms:g} ms)"
            )
    return "\n".join(lines), regressions


# ----------------------------------------------------------------------
# Dashboard: one run, every lens
# ----------------------------------------------------------------------
def _hotspot_table(manifest: RunManifest, top: int) -> str:
    stats = sorted(
        aggregate_spans(manifest.root).values(),
        key=lambda s: (-s.self_ms, s.path),
    )[:top]
    width = max((len(s.path) for s in stats), default=4)
    lines = [
        f"  {'path':{width}}  {'calls':>6}  {'wall ms':>10}  "
        f"{'self ms':>10}  {'cpu ms':>10}"
    ]
    for stat in stats:
        lines.append(
            f"  {stat.path:{width}}  {stat.calls:6d}  {_fmt_ms(stat.wall_ms)}  "
            f"{_fmt_ms(stat.self_ms)}  {_fmt_ms(stat.cpu_ms)}"
        )
    return "\n".join(lines)


def render_explain_section(data: dict[str, object]) -> str:
    """Render a manifest's ``explain`` payload (journeys and/or diffs).

    The payload is plain data produced by ``repro explain ... --trace``;
    the renderers are imported lazily so the obs core keeps no static
    dependency on :mod:`repro.explain`.
    """
    from repro.explain.diff import render_diff_dict
    from repro.explain.journey import render_journey_dict

    parts: list[str] = []
    journeys = data.get("journeys")
    if isinstance(journeys, list):
        parts.extend(render_journey_dict(j) for j in journeys
                     if isinstance(j, dict))
    diffs = data.get("diffs")
    if isinstance(diffs, list):
        parts.extend(render_diff_dict(d) for d in diffs
                     if isinstance(d, dict))
    if not parts:
        return "no journeys or diffs recorded"
    return "\n\n".join(parts)


def render_lint_section(data: dict[str, object]) -> str:
    """Render a ``repro lint --json`` / ``--deep-static --json`` document.

    Shows per-rule counts and the first findings; a clean document says
    so explicitly, so a dashboard with the section present proves the
    analyzer actually ran.
    """
    findings = data.get("findings", [])
    if not isinstance(findings, list):
        return "malformed lint document (findings is not a list)"
    summary = data.get("summary")
    parts: list[str] = []
    if isinstance(summary, dict):
        parts.append(
            f"analyzed {summary.get('modules', '?')} modules / "
            f"{summary.get('functions', '?')} functions / "
            f"{summary.get('edges', '?')} call edges in "
            f"{summary.get('wall_ms', '?')} ms"
        )
    if not findings:
        baselined = data.get("baselined", 0)
        parts.append(
            "no findings"
            + (f" ({baselined} baselined)" if baselined else "")
        )
        return "\n".join(parts)
    by_rule: dict[str, int] = {}
    for finding in findings:
        if isinstance(finding, dict):
            by_rule[str(finding.get("rule", "?"))] = (
                by_rule.get(str(finding.get("rule", "?")), 0) + 1
            )
    width = max(len(rule) for rule in by_rule)
    parts.append("\n".join(
        f"{rule:{width}}  {count}"
        for rule, count in sorted(by_rule.items())
    ))
    shown = []
    for finding in findings[:10]:
        if isinstance(finding, dict):
            shown.append(
                f"{finding.get('path', '?')}:{finding.get('line', '?')}: "
                f"[{finding.get('rule', '?')}] {finding.get('message', '')}"
            )
    if len(findings) > 10:
        shown.append(f"... and {len(findings) - 10} more")
    parts.append("\n".join(shown))
    return "\n\n".join(parts)


def dashboard_sections(
    manifest: RunManifest,
    *,
    history_dir: Path | str | None = None,
    top: int = 10,
    lint: dict[str, object] | None = None,
) -> list[tuple[str, str]]:
    """The dashboard's ``(title, body)`` sections, in display order."""
    from repro.obs.health import health_gauges, render_health
    from repro.obs.prof import render_profile

    header = [
        f"run       {manifest.run_id}",
        f"label     {manifest.label}",
        f"config    {manifest.config_name or '-'}",
        f"git       {manifest.git_sha or '-'}",
        f"wall      {manifest.root.wall_ms / 1000.0:.2f}s  "
        f"(cpu {manifest.root.cpu_ms / 1000.0:.2f}s)",
    ]
    if manifest.incomplete:
        header.append(
            "state     INCOMPLETE — partial tree from a crashed or "
            "still-running recording; unclosed spans are marked [open]"
        )
    if manifest.seeds:
        seeds = ", ".join(f"{k}={v}" for k, v in sorted(manifest.seeds.items()))
        header.append(f"seeds     {seeds}")
    sections = [
        ("run", "\n".join(header)),
        (f"span hotspots (top {top} by self time)",
         _hotspot_table(manifest, top)),
        ("span tree", render_span_tree(manifest.root)),
    ]
    from repro.obs.timeline import build_timeline, render_timeline

    timeline = build_timeline(manifest)
    if timeline.regions:
        sections.append(
            ("parallel timeline & overhead attribution",
             render_timeline(timeline)),
        )
    if manifest.profile is not None:
        sections.append(
            ("profiler: hot functions by span path",
             render_profile(manifest.profile, top_paths=top,
                            top_functions=top)),
        )
    else:
        sections.append(
            ("profiler", "not profiled (re-run with --profile to attribute "
                         "span time to functions)"),
        )
    if manifest.memory is not None:
        from repro.obs.memory import render_memory_section

        sections.append(
            ("memory: allocation by span path & structure census",
             render_memory_section(manifest.memory, top=top)),
        )
    else:
        sections.append(
            ("memory", "not measured (re-run with --memory to attribute "
                       "allocations to spans and census routing state)"),
        )
    sections.append(("health gauges", render_health(health_gauges(manifest))))
    if manifest.explain is not None:
        sections.append(
            ("explain: decision provenance",
             render_explain_section(manifest.explain)),
        )
    if lint is not None:
        sections.append(("static analysis", render_lint_section(lint)))
    if history_dir is not None:
        from repro.obs.trend import check_history

        trend_text, _regressions = check_history(history_dir)
        sections.append((f"trend ({history_dir})", trend_text))
    return sections


def render_dashboard(
    manifest: RunManifest,
    *,
    history_dir: Path | str | None = None,
    top: int = 10,
    lint: dict[str, object] | None = None,
) -> str:
    """The combined terminal report for one traced run."""
    parts = []
    for title, body in dashboard_sections(
        manifest, history_dir=history_dir, top=top, lint=lint
    ):
        rule = "-" * max(20, len(title) + 4)
        parts.append(f"-- {title} {rule[len(title) + 4:]}\n{body}")
    return "\n\n".join(parts)


_HTML_STYLE = """\
:root { color-scheme: light dark; }
body { font-family: ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       background: Canvas; color: CanvasText; line-height: 1.45; }
h1 { font-size: 1.25rem; border-bottom: 1px solid color-mix(in srgb, CanvasText 25%, Canvas);
     padding-bottom: .5rem; }
h2 { font-size: 1rem; margin-top: 2rem; }
pre { background: color-mix(in srgb, CanvasText 6%, Canvas);
      border: 1px solid color-mix(in srgb, CanvasText 15%, Canvas);
      border-radius: 6px; padding: 1rem; overflow-x: auto; font-size: .85rem; }
"""


def render_dashboard_html(
    manifest: RunManifest,
    *,
    history_dir: Path | str | None = None,
    top: int = 10,
    lint: dict[str, object] | None = None,
) -> str:
    """A self-contained static HTML page with the same sections."""
    title = f"repro run {manifest.run_id}"
    body = [f"<h1>{_html.escape(title)}</h1>"]
    for section_title, text in dashboard_sections(
        manifest, history_dir=history_dir, top=top, lint=lint
    ):
        body.append(f"<section><h2>{_html.escape(section_title)}</h2>")
        body.append(f"<pre>{_html.escape(text)}</pre></section>")
    return (
        "<!doctype html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n"
        f"<title>{_html.escape(title)}</title>\n"
        f"<style>\n{_HTML_STYLE}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )
