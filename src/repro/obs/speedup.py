"""Serial-vs-parallel crossover analysis over the benchmark history.

ROADMAP Open item 1 states the uncomfortable fact this module makes
mechanical: on the SMALL world, ``repro.par`` *loses* to serial.  The
bench suite records serial/parallel pairs (``bench.<name>_serial`` /
``bench.<name>_parallel`` series in the :mod:`repro.obs.trend` history,
keyed by ``cpu_count`` / ``bench_workers`` through the record's ``env``),
and this analyzer turns those pairs into:

* observed **speedup** (serial wall / parallel wall) per metric, per
  worker count, per host CPU count — median over the history, so one
  noisy run does not flip the verdict;
* **parallel efficiency** (speedup / workers), the number that exposes
  "4 workers for 0.5x" as the 8x waste it is;
* a ``REPRO_WORKERS`` **recommendation** per config and metric —
  including "use serial" whenever the best observed speedup stays under
  :data:`CROSSOVER_MARGIN`;
* an optional **gate** (``repro obs speedup --gate``): once a group has
  at least :data:`MIN_GATE_HISTORY` prior points, a latest speedup
  falling more than ``tol_pct`` below the prior median fails the run.

``--pair serial.json parallel.json`` compares two run manifests of the
same workload directly, for one-off experiments outside the bench suite.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from statistics import median

from repro.obs.manifest import RunManifest
from repro.obs.trend import TrendRecord, load_history, record_from_manifest

#: Parallel must beat serial by this factor before it is recommended;
#: under it the dispatch overhead is buying nothing but complexity.
CROSSOVER_MARGIN = 1.05

#: Prior points a group needs before the gate stops being advisory.
MIN_GATE_HISTORY = 3

_SERIAL_SUFFIX = "_serial"
_PARALLEL_SUFFIX = "_parallel"


@dataclass(frozen=True)
class SpeedupPoint:
    """One run's serial/parallel wall-time pair for one metric."""

    run_id: str
    git_sha: str | None
    serial_ms: float
    parallel_ms: float

    @property
    def speedup(self) -> float:
        """Serial wall / parallel wall; >1 means parallel wins."""
        if self.parallel_ms <= 0.0:
            return 0.0
        return self.serial_ms / self.parallel_ms


@dataclass
class SpeedupGroup:
    """Every comparable observation of one metric's crossover."""

    config: str | None
    metric: str
    workers: int
    cpu_count: int
    points: list[SpeedupPoint]

    @property
    def latest(self) -> SpeedupPoint:
        return self.points[-1]

    @property
    def median_speedup(self) -> float:
        return median(p.speedup for p in self.points)

    @property
    def efficiency(self) -> float:
        """Median speedup divided by worker count (1.0 = perfect scaling)."""
        if self.workers <= 0:
            return 0.0
        return self.median_speedup / self.workers

    @property
    def parallel_wins(self) -> bool:
        return self.median_speedup >= CROSSOVER_MARGIN

    def key(self) -> tuple[str, str, int, int]:
        return (self.config or "-", self.metric, self.workers, self.cpu_count)


@dataclass(frozen=True)
class Recommendation:
    """The worker count one (config, metric) should run with."""

    config: str | None
    metric: str
    use_serial: bool
    workers: int
    speedup: float
    efficiency: float

    def render(self) -> str:
        where = f"{self.config or '-'}/{self.metric}"
        if self.use_serial:
            return (
                f"{where}: use serial — best observed speedup "
                f"{self.speedup:.2f}x at {self.workers} workers "
                f"(efficiency {self.efficiency:.2f}, crossover needs "
                f">={CROSSOVER_MARGIN:.2f}x)"
            )
        return (
            f"{where}: REPRO_WORKERS={self.workers} "
            f"({self.speedup:.2f}x, efficiency {self.efficiency:.2f})"
        )


@dataclass(frozen=True)
class EfficiencyRegression:
    """The latest speedup fell below its own history."""

    group_key: tuple[str, str, int, int]
    latest: float
    baseline: float
    window: int

    def render(self) -> str:
        config, metric, workers, _cpu = self.group_key
        return (
            f"{config}/{metric} @ {workers} workers: latest speedup "
            f"{self.latest:.2f}x vs median {self.baseline:.2f}x over "
            f"{self.window} prior run(s)"
        )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _pairs_in(record: TrendRecord) -> dict[str, tuple[float, float]]:
    """``metric -> (serial_ms, parallel_ms)`` pairs in one record."""
    pairs: dict[str, tuple[float, float]] = {}
    for name, serial_ms in record.series.items():
        if not name.endswith(_SERIAL_SUFFIX):
            continue
        base = name[: -len(_SERIAL_SUFFIX)]
        parallel_ms = record.series.get(base + _PARALLEL_SUFFIX)
        if parallel_ms is None or parallel_ms <= 0.0 or serial_ms <= 0.0:
            continue
        pairs[base] = (serial_ms, parallel_ms)
    return pairs


@lru_cache(maxsize=1)
def _known_config_names() -> tuple[str, ...]:
    """Preset names, smallest tier first (import deferred: obs stays
    importable without the experiments package)."""
    from repro.experiments.config import CONFIGS

    return tuple(config.name for config in CONFIGS)


def _metric_config(metric: str, fallback: str | None) -> str | None:
    """The world tier a bench metric belongs to.

    Bench series embed the tier in the test name
    (``bench.test_bench_compute_many_large``) while the artifact carries
    a single top-level ``config`` stamp; without this, a LARGE pair
    recorded by a small-stamped artifact would group under the wrong
    tier and poison both medians.  Metrics naming no known preset fall
    through to the record's own config — a series is never dropped for
    carrying an unknown config token.
    """
    tokens = set(re.split(r"[._]", metric))
    for name in _known_config_names():
        if name in tokens:
            return name
    return fallback


def _env_int(record: TrendRecord, key: str) -> int:
    value = record.env.get(key, 0)
    try:
        return int(value)  # type: ignore[call-overload]
    except (TypeError, ValueError):
        return 0


def extract_groups(records: list[TrendRecord]) -> list[SpeedupGroup]:
    """Group serial/parallel pairs by (config, metric, workers, cpus).

    ``records`` must be oldest-first (the order the history store
    yields); each group's points preserve it so "latest" is well
    defined.
    """
    grouped: dict[tuple[str, str, int, int], SpeedupGroup] = {}
    for record in records:
        workers = (_env_int(record, "bench_workers")
                   or _env_int(record, "workers"))
        cpu_count = _env_int(record, "cpu_count")
        for metric, (serial_ms, parallel_ms) in _pairs_in(record).items():
            group = SpeedupGroup(
                config=_metric_config(metric, record.config),
                metric=metric,
                workers=workers,
                cpu_count=cpu_count,
                points=[],
            )
            group = grouped.setdefault(group.key(), group)
            group.points.append(SpeedupPoint(
                run_id=record.run_id,
                git_sha=record.git_sha,
                serial_ms=serial_ms,
                parallel_ms=parallel_ms,
            ))
    return [grouped[key] for key in sorted(grouped)]


def groups_from_history(history_dir: Path | str) -> list[SpeedupGroup]:
    """Extract speedup groups from every label in a trend history."""
    records = [
        record
        for label_records in load_history(history_dir).values()
        for record in label_records
    ]
    records.sort(key=lambda r: r.run_id)
    return extract_groups(records)


def recommend(groups: list[SpeedupGroup]) -> list[Recommendation]:
    """Per (config, metric): the best worker count, or "use serial"."""
    by_target: dict[tuple[str, str], list[SpeedupGroup]] = {}
    for group in groups:
        if not group.points:
            continue
        by_target.setdefault((group.config or "-", group.metric),
                             []).append(group)
    recommendations = []
    for (config, metric) in sorted(by_target):
        candidates = by_target[(config, metric)]
        best = max(candidates, key=lambda g: g.median_speedup)
        recommendations.append(Recommendation(
            config=None if config == "-" else config,
            metric=metric,
            use_serial=not best.parallel_wins,
            workers=best.workers,
            speedup=best.median_speedup,
            efficiency=best.efficiency,
        ))
    return recommendations


# ----------------------------------------------------------------------
# Gate
# ----------------------------------------------------------------------
def gate_speedups(
    groups: list[SpeedupGroup],
    *,
    tol_pct: float = 20.0,
    min_history: int = MIN_GATE_HISTORY,
) -> tuple[list[EfficiencyRegression], list[str]]:
    """``(regressions, advisories)`` for the latest point of each group.

    A group with fewer than ``min_history`` prior points yields an
    advisory line instead of a verdict, so a young history warns rather
    than fails — the behaviour CI runs this with.
    """
    regressions: list[EfficiencyRegression] = []
    advisories: list[str] = []
    for group in groups:
        prior = group.points[:-1]
        if len(prior) < min_history:
            advisories.append(
                f"{group.config or '-'}/{group.metric} @ "
                f"{group.workers} workers: {len(prior)} prior point(s), "
                f"need {min_history} before the gate arms"
            )
            continue
        baseline = median(p.speedup for p in prior)
        latest = group.latest.speedup
        if latest < baseline * (1.0 - tol_pct / 100.0):
            regressions.append(EfficiencyRegression(
                group_key=group.key(),
                latest=latest,
                baseline=baseline,
                window=len(prior),
            ))
    return regressions, advisories


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_speedup(
    groups: list[SpeedupGroup],
    *,
    gate: bool = False,
    tol_pct: float = 20.0,
) -> tuple[str, list[EfficiencyRegression]]:
    """The analyzer report, plus gate regressions (empty unless asked)."""
    if not groups:
        return (
            "no serial/parallel pairs in the history: run the bench "
            "suite (pytest benchmarks/) and `repro obs ingest` the "
            "BENCH artifact first",
            [],
        )
    lines = ["parallel speedup (serial wall / parallel wall):"]
    for group in groups:
        latest = group.latest
        cpu = f"{group.cpu_count} cpu(s)" if group.cpu_count else "cpu ?"
        lines.append(
            f"  {group.config or '-'}/{group.metric}  "
            f"[{group.workers} workers, {cpu}, n={len(group.points)}]"
        )
        lines.append(
            f"    serial {latest.serial_ms:9.1f} ms   parallel "
            f"{latest.parallel_ms:9.1f} ms   speedup "
            f"{latest.speedup:5.2f}x (median {group.median_speedup:.2f}x, "
            f"efficiency {group.efficiency:.2f})"
        )
    lines.append("")
    lines.append("recommendations:")
    lines.extend(f"  {rec.render()}" for rec in recommend(groups))
    regressions: list[EfficiencyRegression] = []
    if gate:
        regressions, advisories = gate_speedups(groups, tol_pct=tol_pct)
        lines.append("")
        if regressions:
            lines.append(
                f"EFFICIENCY REGRESSION: {len(regressions)} group(s) fell "
                f"more than {tol_pct:g}% below their history:"
            )
            lines.extend(f"  {reg.render()}" for reg in regressions)
        elif advisories:
            lines.append("gate advisory (history still too short):")
            lines.extend(f"  {line}" for line in advisories)
        else:
            lines.append(
                f"ok: no group fell more than {tol_pct:g}% below its "
                "historical median speedup"
            )
    return "\n".join(lines), regressions


def render_pair(serial: RunManifest, parallel: RunManifest) -> str:
    """Compare one serial and one parallel manifest of the same workload."""
    lines = [
        f"serial    {serial.run_id}  "
        f"({serial.config_name or '-'}, {serial.root.wall_ms / 1000.0:.2f}s)",
        f"parallel  {parallel.run_id}  "
        f"({parallel.config_name or '-'}, "
        f"{parallel.root.wall_ms / 1000.0:.2f}s)",
    ]
    if parallel.root.wall_ms > 0.0:
        total = serial.root.wall_ms / parallel.root.wall_ms
        verdict = ("parallel wins" if total >= CROSSOVER_MARGIN
                   else "serial wins")
        lines.append(f"total     {total:.2f}x speedup — {verdict}")
    serial_series = record_from_manifest(serial).series
    parallel_series = record_from_manifest(parallel).series
    shared = sorted(
        name for name in serial_series
        if name in parallel_series and not name.startswith("par.")
    )
    if shared:
        width = max(len(name) for name in shared)
        lines += [
            "",
            f"  {'span':{width}}  {'serial ms':>10}  {'parallel ms':>12}  "
            f"{'speedup':>8}",
        ]
        for name in shared:
            s_ms = serial_series[name]
            p_ms = parallel_series[name]
            ratio = f"{s_ms / p_ms:7.2f}x" if p_ms > 0.0 else "       -"
            lines.append(
                f"  {name:{width}}  {s_ms:10.1f}  {p_ms:12.1f}  {ratio}"
            )
    par_overhead = sum(
        ms for name, ms in parallel_series.items() if name.startswith("par.")
    )
    if par_overhead > 0.0:
        lines.append(
            f"\n  parallel phase overhead (par.* spans): "
            f"{par_overhead:.1f} ms — see `repro obs timeline`"
        )
    return "\n".join(lines)
