"""Zero-dependency tracing core: spans, counters, and gauges.

A :class:`Recorder` collects a tree of :class:`SpanRecord` nodes for one
run.  Instrumented code never talks to a recorder directly — it calls the
module-level helpers::

    with span("routing.compute", prefix=str(prefix)):
        ...
        counter.inc("routing.routes_pushed", pushed)

When no recorder is installed (the default), :func:`span` returns a shared
inert singleton and :data:`counter` / :data:`gauge` return immediately —
one global load and a ``None`` check — so hot paths pay ~nothing.  Install
a recorder with :func:`install` or the :func:`recording` context manager
to turn the same call sites into a structured trace.

Each closed span records wall time (``perf_counter``), CPU time
(``process_time``), and the growth of the process's peak RSS while the
span was open (``ru_maxrss`` is a high-water mark, so the delta is
non-zero only for the spans that pushed it; units are KiB on Linux).
Counter increments and gauge values attach to the innermost open span.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import for type checking only
    from repro.obs.events import EventSink
    from repro.obs.live import CheckpointWriter
    from repro.obs.memory import MemoryProfiler
    from repro.obs.prof import SpanProfiler

try:  # pragma: no cover - exercised on POSIX only
    import resource as _resource

    def _peak_rss_kib() -> int:
        """The process's peak resident-set size so far (KiB on Linux)."""
        return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)

except ImportError:  # pragma: no cover - non-POSIX fallback

    def _peak_rss_kib() -> int:
        return 0


@dataclass
class SpanRecord:
    """One completed (or in-flight) span and its subtree."""

    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    wall_ms: float = 0.0
    cpu_ms: float = 0.0
    #: Growth of the process's peak RSS while the span was open, in KiB.
    rss_peak_delta_kib: int = 0
    status: str = "ok"
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    children: list["SpanRecord"] = field(default_factory=list)

    @property
    def self_wall_ms(self) -> float:
        """Wall time not attributed to any child span."""
        return max(0.0, self.wall_ms - sum(c.wall_ms for c in self.children))

    def walk(self, prefix: str = "") -> Iterator[tuple[str, "SpanRecord"]]:
        """Yield ``(slash-joined path, span)`` over the subtree, pre-order."""
        path = f"{prefix}/{self.name}" if prefix else self.name
        yield path, self
        for child in self.children:
            yield from child.walk(path)

    def find(self, name: str) -> "SpanRecord | None":
        """The first span named ``name`` in pre-order, or None."""
        for _, record in self.walk():
            if record.name == name:
                return record
        return None

    def find_all(self, name: str) -> list["SpanRecord"]:
        """Every span named ``name`` in the subtree, pre-order."""
        return [record for _, record in self.walk() if record.name == name]

    def subtree_counters(self) -> dict[str, float]:
        """Counter totals summed over the whole subtree."""
        totals: dict[str, float] = {}
        for _, record in self.walk():
            for key, value in record.counters.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (attrs coerced to plain values)."""
        data: dict[str, object] = {
            "name": self.name,
            "wall_ms": round(self.wall_ms, 3),
            "cpu_ms": round(self.cpu_ms, 3),
            "rss_peak_delta_kib": self.rss_peak_delta_kib,
            "status": self.status,
        }
        if self.attrs:
            data["attrs"] = {k: _plain(v) for k, v in self.attrs.items()}
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.gauges:
            data["gauges"] = dict(self.gauges)
        if self.children:
            data["children"] = [c.to_dict() for c in self.children]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "SpanRecord":
        children = data.get("children", [])
        if not isinstance(children, list):
            raise ValueError("span 'children' must be a list")
        return cls(
            name=str(data["name"]),
            attrs=dict(data.get("attrs", {})),  # type: ignore[call-overload]
            wall_ms=float(data.get("wall_ms", 0.0)),  # type: ignore[arg-type]
            cpu_ms=float(data.get("cpu_ms", 0.0)),  # type: ignore[arg-type]
            rss_peak_delta_kib=int(data.get("rss_peak_delta_kib", 0)),  # type: ignore[call-overload]
            status=str(data.get("status", "ok")),
            counters={str(k): float(v)
                      for k, v in dict(data.get("counters", {})).items()},  # type: ignore[call-overload]
            gauges={str(k): float(v)
                    for k, v in dict(data.get("gauges", {})).items()},  # type: ignore[call-overload]
            children=[cls.from_dict(c) for c in children],
        )


def _plain(value: object) -> object:
    """Attribute values JSON can carry unchanged; everything else as str."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class ActiveSpan:
    """Context manager for one open span on a recorder's stack."""

    __slots__ = ("_recorder", "record", "_wall0", "_cpu0", "_rss0")

    def __init__(self, recorder: "Recorder", record: SpanRecord):
        self._recorder = recorder
        self.record = record
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._rss0 = 0

    def __enter__(self) -> "ActiveSpan":
        self._recorder._push(self.record)
        self._rss0 = _peak_rss_kib()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        record = self.record
        record.wall_ms = wall * 1000.0
        record.cpu_ms = cpu * 1000.0
        record.rss_peak_delta_kib = max(0, _peak_rss_kib() - self._rss0)
        if exc_type is not None:
            record.status = "error"
        self._recorder._pop(record)
        return False


class NullSpan:
    """The inert span handed out while no recorder is installed."""

    __slots__ = ()

    #: Mirrors :attr:`ActiveSpan.record` so callers can always read it.
    record: None = None

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


#: Shared no-op span; identity-comparable in tests.
NULL_SPAN = NullSpan()


class Recorder:
    """Collects the span tree and counters of one process-local recording."""

    def __init__(
        self,
        label: str = "run",
        event_sink: "EventSink | None" = None,
        profiler: "SpanProfiler | None" = None,
        memory: "MemoryProfiler | None" = None,
        run_info: dict[str, object] | None = None,
        heartbeat_every_s: float | None = None,
    ):
        self.root = SpanRecord(name=label)
        self._stack: list[SpanRecord] = [self.root]
        self._events = event_sink
        #: Optional span-aware function profiler (see repro.obs.prof);
        #: notified on every span push/pop so function time groups by
        #: span path.  None costs one attribute check per span.
        self.profiler = profiler
        #: Optional span-attributed allocation profiler (see
        #: repro.obs.memory); driven by the same push/pop notifications.
        #: Forces serial execution while active (tracemalloc is
        #: process-local; see repro.par.pool.capture_blocks_parallel).
        self.memory = memory
        self._wall_origin = time.perf_counter()
        self._cpu_origin = time.process_time()
        self._rss_origin = _peak_rss_kib()
        self._finished = False
        #: Set by :func:`repro.obs.manifest.tracing` after export.
        self.manifest_path: Path | None = None
        #: Serialised decision-provenance payload (repro.explain) to embed
        #: in the run manifest, set by producers before tracing() exits.
        #: Plain dicts only — the obs core never imports repro.explain.
        self.explain_data: dict[str, object] | None = None
        #: Structure-census rows (plain dicts, repro.obs.memory shape)
        #: to embed in the manifest's "memory" payload, set by producers
        #: before tracing() exits.
        self.memory_census: list[dict[str, object]] | None = None
        #: Wall-clock start (``perf_counter``) of each span on the open
        #: stack, index-parallel to ``_stack``; lets heartbeat and
        #: checkpoint snapshots stamp elapsed time onto open spans.
        self._open_wall0: list[float] = [self._wall_origin]
        #: Running counter totals across the whole run, maintained on
        #: every increment so heartbeats snapshot counters in O(keys)
        #: instead of walking the span tree.
        self._counter_totals: dict[str, float] = {}
        #: Optional crash-safe checkpoint writer (repro.obs.live);
        #: ``maybe_write`` is called from the heartbeat tick.
        self.checkpoint: "CheckpointWriter | None" = None
        # Heartbeats are opportunistic: checked on span push/pop, no
        # threads.  Default on (1s) when events stream somewhere a tail
        # reader could watch, off for purely in-memory recordings.
        if heartbeat_every_s is None:
            heartbeat_every_s = 1.0 if event_sink is not None else 0.0
        self._hb_every = float(heartbeat_every_s)
        self._hb_last = self._wall_origin
        if event_sink is not None:
            from repro.obs.events import EVENTS_SCHEMA

            header: dict[str, object] = {
                "ev": "run_header",
                "schema": EVENTS_SCHEMA,
                "label": label,
                "pid": os.getpid(),
                "unix": time.time(),  # repro-lint: disable=fork-wallclock -- absolute stream anchor for live readers, not a duration
            }
            if run_info:
                header.update(run_info)
            event_sink.emit(header)
            flush = getattr(event_sink, "flush", None)
            if callable(flush):
                flush()

    @property
    def current(self) -> SpanRecord:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    @property
    def wall_origin(self) -> float:
        """``perf_counter`` reading when this recorder was constructed.

        On Linux ``perf_counter`` is CLOCK_MONOTONIC — a system-wide
        clock — so origins from different processes on the same host are
        directly comparable.  ``repro.par.obsbuf`` relies on this to turn
        worker-side capture times into parent-relative offsets.
        """
        return self._wall_origin

    def span(self, name: str, **attrs: object) -> ActiveSpan:
        return ActiveSpan(self, SpanRecord(name=name, attrs=dict(attrs)))

    def counter_inc(self, name: str, amount: float = 1.0) -> None:
        counters = self._stack[-1].counters
        counters[name] = counters.get(name, 0.0) + amount
        totals = self._counter_totals
        totals[name] = totals.get(name, 0.0) + amount

    def gauge_set(self, name: str, value: float) -> None:
        self._stack[-1].gauges[name] = float(value)

    def open_spans(self) -> list[tuple[SpanRecord, float]]:
        """The open span stack as ``(record, perf_counter start)`` pairs.

        Includes the root; consumed by checkpoint snapshots to stamp an
        elapsed wall time onto spans that have not closed yet.
        """
        return list(zip(self._stack, self._open_wall0))

    def open_path(self) -> str:
        """Slash-joined names of the open spans below the root."""
        return "/".join(record.name for record in self._stack[1:])

    def heartbeat_event(self, now: float | None = None) -> None:
        """Emit one ``hb`` event (and flush it) to the event sink."""
        if self._events is None:
            return
        if now is None:
            now = time.perf_counter()
        self._events.emit({
            "ev": "hb",
            "t_ms": round((now - self._wall_origin) * 1000.0, 3),
            "unix": time.time(),
            "cpu_ms": round((time.process_time() - self._cpu_origin) * 1000.0, 3),
            "rss_kib": _peak_rss_kib(),
            "path": self.open_path(),
            "depth": len(self._stack) - 1,
            "counters": dict(self._counter_totals),
        })
        # Heartbeats exist to be read while the run is alive: bypass
        # the sink's batching so the tail reader sees them promptly.
        flush = getattr(self._events, "flush", None)
        if callable(flush):
            flush()

    def _tick(self) -> None:
        """Opportunistic heartbeat check, piggybacked on span push/pop."""
        if self._hb_every <= 0.0:
            return
        now = time.perf_counter()
        if now - self._hb_last < self._hb_every:
            return
        self._hb_last = now
        self.heartbeat_event(now)
        if self.checkpoint is not None:
            self.checkpoint.maybe_write(self)

    def finish(self) -> SpanRecord:
        """Stamp the root span's totals (idempotent) and close the sink."""
        if not self._finished:
            self._finished = True
            self.root.wall_ms = (time.perf_counter() - self._wall_origin) * 1000.0
            self.root.cpu_ms = (time.process_time() - self._cpu_origin) * 1000.0
            self.root.rss_peak_delta_kib = max(0, _peak_rss_kib() - self._rss_origin)
            if self._events is not None:
                self._events.emit({
                    "ev": "run_end",
                    "t_ms": round(self.root.wall_ms, 3),
                    "wall_ms": round(self.root.wall_ms, 3),
                    "cpu_ms": round(self.root.cpu_ms, 3),
                    "status": self.root.status,
                    "unix": time.time(),  # repro-lint: disable=fork-wallclock -- absolute end-of-run stamp for live readers, not a duration
                })
                self._events.close()
        return self.root

    # -- stack plumbing used by ActiveSpan -----------------------------
    def _push(self, record: SpanRecord) -> None:
        self._stack[-1].children.append(record)
        self._stack.append(record)
        self._open_wall0.append(time.perf_counter())
        if self.profiler is not None:
            self.profiler.span_push(record.name)
        if self.memory is not None:
            self.memory.span_push(record.name)
        if self._events is not None:
            self._events.emit({
                "ev": "start",
                "span": record.name,
                "t_ms": round((time.perf_counter() - self._wall_origin) * 1000.0, 3),
                "depth": len(self._stack) - 1,
                "attrs": {k: _plain(v) for k, v in record.attrs.items()},
            })
        self._tick()

    def _pop(self, record: SpanRecord) -> None:
        # Unwind to the matching record so a mis-nested exit cannot wedge
        # the stack (spans are context-managed, so this is one pop).
        while len(self._stack) > 1:
            if self._stack.pop() is record:
                break
        del self._open_wall0[len(self._stack):]
        if self.profiler is not None:
            self.profiler.span_pop()
        if self.memory is not None:
            self.memory.span_pop()
        if self._events is not None:
            self._events.emit({
                "ev": "end",
                "span": record.name,
                "t_ms": round((time.perf_counter() - self._wall_origin) * 1000.0, 3),
                "wall_ms": round(record.wall_ms, 3),
                "status": record.status,
                "counters": dict(record.counters),
            })
        self._tick()


#: The process-local recorder; None means tracing is disabled.
_CURRENT: Recorder | None = None


def install(recorder: Recorder | None) -> Recorder | None:
    """Make ``recorder`` the process-local recorder (None disables)."""
    global _CURRENT
    _CURRENT = recorder
    return recorder


def uninstall() -> Recorder | None:
    """Remove the installed recorder, stamping its root; returns it."""
    global _CURRENT
    recorder = _CURRENT
    _CURRENT = None
    if recorder is not None:
        recorder.finish()
    return recorder


def active() -> Recorder | None:
    """The installed recorder, or None when tracing is disabled."""
    return _CURRENT


def span(name: str, **attrs: object) -> ActiveSpan | NullSpan:
    """Open a span on the installed recorder; inert when disabled."""
    recorder = _CURRENT
    if recorder is None:
        return NULL_SPAN
    return recorder.span(name, **attrs)


@contextmanager
def recording(
    label: str = "run",
    event_sink: "EventSink | None" = None,
    profiler: "SpanProfiler | None" = None,
    memory: "MemoryProfiler | None" = None,
    run_info: dict[str, object] | None = None,
    heartbeat_every_s: float | None = None,
) -> Iterator[Recorder]:
    """Install a fresh recorder for the duration of the block.

    Restores whatever recorder (or None) was installed before, so
    recordings nest safely; the yielded recorder is finished on exit.
    A ``profiler`` or ``memory`` profiler is started on entry and
    stopped on exit, bracketing exactly the recorded region.
    """
    global _CURRENT
    previous = _CURRENT
    recorder = Recorder(label, event_sink=event_sink, profiler=profiler,
                        memory=memory, run_info=run_info,
                        heartbeat_every_s=heartbeat_every_s)
    _CURRENT = recorder
    if profiler is not None:
        profiler.start()
    if memory is not None:
        memory.start()
    try:
        yield recorder
    finally:
        if memory is not None:
            memory.stop()
        if profiler is not None:
            profiler.stop()
        recorder.finish()
        _CURRENT = previous


class _CounterAPI:
    """Module-level counter facade: ``counter.inc("name", amount)``."""

    __slots__ = ()

    @staticmethod
    def inc(name: str, amount: float = 1.0) -> None:
        recorder = _CURRENT
        if recorder is not None:
            recorder.counter_inc(name, amount)


class _GaugeAPI:
    """Module-level gauge facade: ``gauge.set("name", value)``."""

    __slots__ = ()

    @staticmethod
    def set(name: str, value: float) -> None:
        recorder = _CURRENT
        if recorder is not None:
            recorder.gauge_set(name, value)


counter = _CounterAPI()
gauge = _GaugeAPI()
