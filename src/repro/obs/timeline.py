"""Per-worker Gantt timelines and overhead attribution for parallel runs.

A serial trace answers "where did the time go" by span nesting alone; a
parallel trace cannot, because worker time overlaps parent time.  This
module reconstructs the missing picture from the artifacts
:mod:`repro.par.obsbuf` merges into a recording:

* parent-side **phase spans** — ``par.stage`` (building tasks, staging
  fork state), ``par.fork`` (executor construction), ``par.dispatch``
  (submit-and-drain window), ``par.merge`` (payload merge) — mark the
  pool lifecycle;
* per-task ``par.chunk`` wrapper spans carry ``worker_pid``,
  ``chunk_index``, and recorder-relative ``t0_ms``/``t1_ms`` offsets,
  from which per-worker lanes (a Gantt chart) are rebuilt.

Every span subtree containing a ``par.dispatch`` child is one
**parallel region**.  Its wall clock is attributed exactly — the
buckets sum to the region's parallel elapsed time by construction:

========== ==========================================================
bucket     meaning
========== ==========================================================
stage      parent-side task building / fork-state staging
fork       executor construction (workers fork lazily, so ~0; the
           real fork+init cost surfaces as ``dispatch`` residual)
compute    time every worker was busy at once (min worker busy)
imbalance  max−min worker busy: chunks that finished unevenly
dispatch   dispatch-window residual: fork+init, IPC, scheduling
merge      parent-side payload merge
other      clamping loss when chunk clocks disagree with the window
========== ==========================================================

``repro obs timeline <run.json>`` renders the report in the terminal;
the HTML dashboard embeds the same text (see
:func:`repro.obs.report.dashboard_sections`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.manifest import RunManifest
from repro.obs.recorder import SpanRecord

#: Timeline JSON schema; bump on breaking layout changes.
TIMELINE_SCHEMA = 1

PHASE_STAGE = "par.stage"
PHASE_FORK = "par.fork"
PHASE_DISPATCH = "par.dispatch"
PHASE_MERGE = "par.merge"
CHUNK_SPAN = "par.chunk"

_PHASE_NAMES = (PHASE_STAGE, PHASE_FORK, PHASE_DISPATCH, PHASE_MERGE)

#: Attribution buckets, report order.  They always sum to the parallel
#: elapsed time, so "attributed fraction" is 1.0 by construction and
#: the interesting number is how the total splits.
BUCKETS = (
    "stage", "fork", "compute", "imbalance", "dispatch", "merge", "other",
)

#: Coverage-quantised Gantt cells, blank through full.
_GANTT_LEVELS = " ░▒▓█"


@dataclass(frozen=True)
class ChunkInterval:
    """One merged worker chunk on the parent's monotonic axis."""

    worker_pid: int
    chunk_index: int
    t0_ms: float
    t1_ms: float
    cpu_ms: float
    spans: int

    @property
    def wall_ms(self) -> float:
        return max(0.0, self.t1_ms - self.t0_ms)


@dataclass
class WorkerLane:
    """Every chunk one worker process executed, in time order."""

    worker_id: int
    pid: int
    chunks: list[ChunkInterval] = field(default_factory=list)

    @property
    def busy_ms(self) -> float:
        return sum(c.wall_ms for c in self.chunks)


@dataclass
class Region:
    """One parallel fan-out: a span subtree with a ``par.dispatch``."""

    path: str
    label: str
    workers: int
    phase_ms: dict[str, float]
    lanes: list[WorkerLane]

    @property
    def elapsed_ms(self) -> float:
        """The region's parallel wall clock: the four phases end to end."""
        return sum(self.phase_ms.values())

    def attribution(self) -> dict[str, float]:
        """Bucket -> ms; sums to :attr:`elapsed_ms` exactly."""
        dispatch = self.phase_ms.get(PHASE_DISPATCH, 0.0)
        busy = [lane.busy_ms for lane in self.lanes]
        # Workers the dispatch configured but no chunk reached count as
        # idle lanes: their zero busy time is real imbalance.
        busy += [0.0] * max(0, self.workers - len(busy))
        # Worker clocks can slightly overrun the dispatch window (the
        # parent stamps par.dispatch closed only after the last payload
        # unpickles), so busy times are clamped into the window; the
        # overrun would otherwise drive the residual negative.
        busy_min = min(busy, default=0.0)
        busy_max = max(busy, default=0.0)
        compute = min(busy_min, dispatch)
        imbalance = min(busy_max, dispatch) - compute
        residual = dispatch - compute - imbalance
        return {
            "stage": self.phase_ms.get(PHASE_STAGE, 0.0),
            "fork": self.phase_ms.get(PHASE_FORK, 0.0),
            "compute": compute,
            "imbalance": imbalance,
            "dispatch": residual,
            "merge": self.phase_ms.get(PHASE_MERGE, 0.0),
            # Reserved for wall time the model cannot place; the clamps
            # above keep the partition exact, so this stays 0 today.
            "other": 0.0,
        }


@dataclass
class Timeline:
    """The parallel-execution picture of one recorded run."""

    run_id: str
    label: str
    total_wall_ms: float
    regions: list[Region]
    #: par.stage / par.fork wall time outside any region (e.g. a fleet
    #: pool built under a span whose dispatches happen elsewhere).
    orphan_phase_ms: dict[str, float]

    @property
    def parallel_elapsed_ms(self) -> float:
        return (sum(r.elapsed_ms for r in self.regions)
                + sum(self.orphan_phase_ms.values()))

    def attribution(self) -> dict[str, float]:
        """Run-level bucket -> ms over every region plus orphan phases."""
        totals = dict.fromkeys(BUCKETS, 0.0)
        for region in self.regions:
            for bucket, ms in region.attribution().items():
                totals[bucket] += ms
        totals["stage"] += self.orphan_phase_ms.get(PHASE_STAGE, 0.0)
        totals["fork"] += self.orphan_phase_ms.get(PHASE_FORK, 0.0)
        return totals


# ----------------------------------------------------------------------
# Reconstruction
# ----------------------------------------------------------------------
def _chunk_from_span(record: SpanRecord) -> ChunkInterval | None:
    attrs = record.attrs
    if "t0_ms" not in attrs or "t1_ms" not in attrs:
        return None
    return ChunkInterval(
        worker_pid=int(attrs.get("worker_pid", 0)),  # type: ignore[call-overload]
        chunk_index=int(attrs.get("chunk_index", -1)),  # type: ignore[call-overload]
        t0_ms=float(attrs["t0_ms"]),  # type: ignore[arg-type]
        t1_ms=float(attrs["t1_ms"]),  # type: ignore[arg-type]
        cpu_ms=record.cpu_ms,
        spans=len(record.children),
    )


def _lanes_from_chunks(chunks: list[ChunkInterval]) -> list[WorkerLane]:
    """Group chunks into per-pid lanes; worker ids rank by first start."""
    by_pid: dict[int, list[ChunkInterval]] = {}
    for chunk in chunks:
        by_pid.setdefault(chunk.worker_pid, []).append(chunk)
    ordered = sorted(
        by_pid.items(),
        key=lambda item: (min(c.t0_ms for c in item[1]), item[0]),
    )
    return [
        WorkerLane(
            worker_id=worker_id,
            pid=pid,
            chunks=sorted(pid_chunks, key=lambda c: (c.t0_ms, c.chunk_index)),
        )
        for worker_id, (pid, pid_chunks) in enumerate(ordered)
    ]


def _walk_regions(
    record: SpanRecord, path: str
) -> Iterator[tuple[str, SpanRecord]]:
    """Pre-order ``(path, span)`` over spans that own a ``par.dispatch``."""
    here = f"{path}/{record.name}" if path else record.name
    if any(child.name == PHASE_DISPATCH for child in record.children):
        yield here, record
    for child in record.children:
        yield from _walk_regions(child, here)


def build_timeline(manifest: RunManifest) -> Timeline:
    """Reconstruct the parallel timeline of one run manifest."""
    regions: list[Region] = []
    region_spans: set[int] = set()
    for path, parent in _walk_regions(manifest.root, ""):
        phase_ms = dict.fromkeys(_PHASE_NAMES, 0.0)
        workers = 0
        for child in parent.children:
            if child.name in phase_ms:
                phase_ms[child.name] += child.wall_ms
                region_spans.add(id(child))
            if child.name == PHASE_DISPATCH:
                workers = max(
                    workers,
                    int(child.attrs.get("workers", 0)),  # type: ignore[call-overload]
                )
        chunks = [
            chunk
            for span in parent.find_all(CHUNK_SPAN)
            if (chunk := _chunk_from_span(span)) is not None
        ]
        regions.append(Region(
            path=path,
            label=parent.name,
            workers=workers or len({c.worker_pid for c in chunks}),
            phase_ms=phase_ms,
            lanes=_lanes_from_chunks(chunks),
        ))
    orphans = dict.fromkeys((PHASE_STAGE, PHASE_FORK), 0.0)
    for _, record in manifest.root.walk():
        if record.name in orphans and id(record) not in region_spans:
            orphans[record.name] += record.wall_ms
    return Timeline(
        run_id=manifest.run_id,
        label=manifest.label,
        total_wall_ms=manifest.root.wall_ms,
        regions=regions,
        orphan_phase_ms=orphans,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _gantt_row(
    lane: WorkerLane, t_lo: float, t_hi: float, width: int
) -> str:
    """One worker's lane, coverage-quantised into ``width`` cells."""
    span = max(t_hi - t_lo, 1e-9)
    cell = span / width
    out = []
    for index in range(width):
        c_lo = t_lo + index * cell
        c_hi = c_lo + cell
        covered = sum(
            max(0.0, min(chunk.t1_ms, c_hi) - max(chunk.t0_ms, c_lo))
            for chunk in lane.chunks
        )
        coverage = min(1.0, covered / cell)
        level = round(coverage * (len(_GANTT_LEVELS) - 1))
        if coverage > 0.02:
            level = max(1, level)
        out.append(_GANTT_LEVELS[level])
    return "".join(out)


def _attribution_table(attribution: dict[str, float], indent: str) -> list[str]:
    elapsed = sum(attribution.values())
    lines = [f"{indent}{'bucket':10}  {'wall ms':>10}  {'%':>6}"]
    for bucket in BUCKETS:
        ms = attribution.get(bucket, 0.0)
        pct = 100.0 * ms / elapsed if elapsed > 0.0 else 0.0
        lines.append(f"{indent}{bucket:10}  {ms:10.1f}  {pct:6.1f}")
    return lines


def render_region(region: Region, *, width: int = 64) -> str:
    """Terminal report for one region: phases, Gantt lanes, attribution."""
    lines = [
        f"region {region.path}  "
        f"(workers={region.workers}, elapsed {region.elapsed_ms:.1f} ms)"
    ]
    for phase in _PHASE_NAMES:
        lines.append(f"  {phase:14}  {region.phase_ms.get(phase, 0.0):10.1f} ms")
    chunks = [chunk for lane in region.lanes for chunk in lane.chunks]
    if chunks:
        t_lo = min(chunk.t0_ms for chunk in chunks)
        t_hi = max(chunk.t1_ms for chunk in chunks)
        lines.append(
            f"  worker lanes  [{t_lo:.1f} ms .. {t_hi:.1f} ms]  "
            f"({_GANTT_LEVELS[1]}..{_GANTT_LEVELS[-1]} = chunk coverage)"
        )
        for lane in region.lanes:
            row = _gantt_row(lane, t_lo, t_hi, width)
            lines.append(
                f"  w{lane.worker_id} |{row}| "
                f"busy {lane.busy_ms:8.1f} ms, {len(lane.chunks)} chunk(s)"
            )
    else:
        lines.append("  (no worker chunks recorded)")
    lines.append("  attribution:")
    lines.extend(_attribution_table(region.attribution(), "    "))
    return "\n".join(lines)


def render_timeline(timeline: Timeline, *, width: int = 64) -> str:
    """The full terminal report for one run's parallel timeline."""
    if not timeline.regions:
        return (
            "no parallel regions recorded: the run was serial "
            "(REPRO_WORKERS unset or <2) or predates phase spans"
        )
    header = [
        f"run       {timeline.run_id}",
        f"label     {timeline.label}",
        f"wall      {timeline.total_wall_ms / 1000.0:.2f}s total, "
        f"{timeline.parallel_elapsed_ms / 1000.0:.2f}s in "
        f"{len(timeline.regions)} parallel region(s)",
    ]
    parts = ["\n".join(header)]
    parts.extend(
        render_region(region, width=width) for region in timeline.regions
    )
    attribution = timeline.attribution()
    elapsed = sum(attribution.values())
    attributed_pct = 100.0 if elapsed > 0.0 else 0.0
    run_pct = (
        100.0 * elapsed / timeline.total_wall_ms
        if timeline.total_wall_ms > 0.0 else 0.0
    )
    summary = ["overall attribution:"]
    summary.extend(_attribution_table(attribution, "  "))
    summary.append(
        f"attributed {attributed_pct:.1f}% of {elapsed:.1f} ms parallel "
        f"wall time to named buckets ({run_pct:.1f}% of run wall)"
    )
    parts.append("\n".join(summary))
    return "\n\n".join(parts)


def timeline_to_dict(timeline: Timeline) -> dict[str, object]:
    """JSON-serialisable form (the CI artifact)."""
    return {
        "schema": TIMELINE_SCHEMA,
        "run_id": timeline.run_id,
        "label": timeline.label,
        "total_wall_ms": round(timeline.total_wall_ms, 3),
        "parallel_elapsed_ms": round(timeline.parallel_elapsed_ms, 3),
        "attribution_ms": {
            k: round(v, 3) for k, v in timeline.attribution().items()
        },
        "orphan_phase_ms": {
            k: round(v, 3) for k, v in timeline.orphan_phase_ms.items()
        },
        "regions": [
            {
                "path": region.path,
                "label": region.label,
                "workers": region.workers,
                "elapsed_ms": round(region.elapsed_ms, 3),
                "phase_ms": {
                    k: round(v, 3) for k, v in region.phase_ms.items()
                },
                "attribution_ms": {
                    k: round(v, 3) for k, v in region.attribution().items()
                },
                "lanes": [
                    {
                        "worker_id": lane.worker_id,
                        "pid": lane.pid,
                        "busy_ms": round(lane.busy_ms, 3),
                        "chunks": [
                            {
                                "chunk_index": chunk.chunk_index,
                                "t0_ms": round(chunk.t0_ms, 3),
                                "t1_ms": round(chunk.t1_ms, 3),
                                "cpu_ms": round(chunk.cpu_ms, 3),
                                "spans": chunk.spans,
                            }
                            for chunk in lane.chunks
                        ],
                    }
                    for lane in region.lanes
                ],
            }
            for region in timeline.regions
        ],
    }
