"""``repro.obs`` — structured tracing, metrics, and run manifests.

The observability substrate of the reproduction pipeline:

- :mod:`repro.obs.recorder` — spans, counters, gauges, and the
  process-local :class:`Recorder` (no-op when disabled);
- :mod:`repro.obs.events` — JSONL event streaming for long runs;
- :mod:`repro.obs.manifest` — run manifests (config, seeds, git SHA,
  span tree) and the :func:`~repro.obs.manifest.tracing` helper;
- :mod:`repro.obs.prof` — deterministic span-aware function profiler
  (``repro obs profile``, ``repro run --profile``);
- :mod:`repro.obs.trend` — append-only benchmark history and the
  median+MAD regression gate (``repro obs ingest`` / ``trend``);
- :mod:`repro.obs.timeline` — per-worker Gantt timelines and overhead
  attribution for parallel runs (``repro obs timeline``);
- :mod:`repro.obs.speedup` — serial-vs-parallel crossover analysis over
  the bench history (``repro obs speedup``);
- :mod:`repro.obs.health` — domain health gauges recorded at the end of
  instrumented runs (``health.*``);
- :mod:`repro.obs.report` — ``obs summary`` / ``obs compare`` /
  ``obs dashboard`` rendering;
- :mod:`repro.obs.live` — live-run telemetry: stream following
  (``repro obs tail`` / ``watch``), progress/ETA against the trend
  history, crash-safe checkpoint manifests, and the per-worker
  heartbeat side-channel;
- :mod:`repro.obs.watchdog` — stall detection over a live stream
  (``repro obs watchdog [--gate]``).

Typical instrumentation::

    from repro import obs

    with obs.span("routing.compute", prefix=str(prefix)):
        ...
        obs.counter.inc("routing.routes_pushed", pushed)

and a traced entry point::

    from repro.obs.manifest import tracing

    with tracing("obs/", label="my-run", config=cfg) as recorder:
        run_everything()
    print(recorder.manifest_path)

See ``docs/observability.md`` for the full API and trace schema.
"""

from repro.obs.recorder import (
    NULL_SPAN,
    ActiveSpan,
    NullSpan,
    Recorder,
    SpanRecord,
    active,
    counter,
    gauge,
    install,
    recording,
    span,
    uninstall,
)

__all__ = [
    "NULL_SPAN",
    "ActiveSpan",
    "NullSpan",
    "Recorder",
    "SpanRecord",
    "active",
    "counter",
    "gauge",
    "install",
    "recording",
    "span",
    "uninstall",
]
