"""Live-run telemetry: stream following, progress/ETA, checkpoints.

Everything else in ``repro.obs`` is post-hoc — manifests, trends,
timelines all require the run to have exited.  This module is the
*while-it-runs* plane built on the schema-2 event stream
(:mod:`repro.obs.events`):

- :class:`EventFollower` tails a JSONL stream torn-tail tolerantly — a
  reader polling mid-flush only ever sees a shorter prefix, never a
  parse error — and powers ``repro obs tail``.
- :func:`replay_events` reconstructs the span tree of an *unfinished*
  stream (start events without matching ends become ``open`` spans),
  and :func:`manifest_from_events` lifts that into a loadable
  :class:`~repro.obs.manifest.RunManifest` so ``repro obs summary``
  works on the stream of a killed run.
- :func:`expectations_from_history` derives expected per-span durations
  from the trend history with the same robust statistics as the
  regression gate (median + MAD, see :mod:`repro.obs.trend`);
  :func:`compute_status` turns a replayed stream plus expectations into
  % complete and an ETA for ``repro obs watch``.
- :class:`CheckpointWriter` periodically flushes a partial manifest
  (``run-<id>.checkpoint.json``, ``"incomplete": true``) from the
  recorder's heartbeat tick, so a SIGKILLed build still leaves a
  loadable manifest behind.
- The worker heartbeat side-channel (:func:`worker_beat` /
  :func:`read_worker_heartbeats`) gives forked workers a liveness
  trail of their own: one append-only JSONL per pid under
  ``hb-<run_id>/``, inherited through fork, merged on read — so the
  watchdog catches a hung *worker*, not just a hung parent.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.obs.events import (
    EV_END,
    EV_HEARTBEAT,
    EV_RUN_END,
    EV_RUN_HEADER,
    EV_START,
    EventLog,
    read_events,
)
from repro.obs.manifest import (
    SCHEMA_VERSION,
    RunManifest,
    current_git_sha,
    seeds_of,
)
from repro.obs.recorder import Recorder, SpanRecord
from repro.obs.trend import MAD_SIGMA, TrendRecord

#: Series key for the whole-run wall time in an expectations map.
TOTAL_METRIC = "total"


# ----------------------------------------------------------------------
# Stream replay: events -> span tree + liveness facts
# ----------------------------------------------------------------------
@dataclass
class StreamView:
    """One event stream replayed into a queryable shape."""

    root: SpanRecord
    header: dict[str, object] | None = None
    completed: bool = False
    #: Final status from the run_end sentinel (None while in flight).
    end_status: str | None = None
    #: Largest recorder-relative timestamp seen, ms.
    last_t_ms: float = 0.0
    #: Best absolute anchor for "when did we last hear from the run":
    #: the max ``unix`` stamp over header/heartbeat/run_end events,
    #: advanced to the estimated absolute time of the last span event.
    last_unix: float | None = None
    #: Open (unclosed) spans outermost-first as ``(record, start t_ms)``.
    open_spans: list[tuple[SpanRecord, float]] = field(default_factory=list)
    #: Wall ms of *closed* spans summed by span name.
    closed_ms_by_name: dict[str, float] = field(default_factory=dict)
    #: Most recent heartbeat event, when the stream carries any.
    last_hb: dict[str, object] | None = None

    @property
    def run_id(self) -> str | None:
        value = (self.header or {}).get("run_id")
        return None if value is None else str(value)

    @property
    def label(self) -> str:
        return str((self.header or {}).get("label", "run"))

    @property
    def header_unix(self) -> float | None:
        value = (self.header or {}).get("unix")
        return float(value) if isinstance(value, (int, float)) else None

    def counters(self) -> dict[str, float]:
        """Live counter totals: last heartbeat snapshot, else tree sum."""
        if self.last_hb is not None:
            raw = self.last_hb.get("counters")
            if isinstance(raw, dict):
                return {str(k): float(v) for k, v in raw.items()}
        return self.root.subtree_counters()

    def observed_ms_by_name(self, now_ms: float | None = None) -> dict[str, float]:
        """Closed wall per span name, plus elapsed time of open spans."""
        if now_ms is None:
            now_ms = self.last_t_ms
        observed = dict(self.closed_ms_by_name)
        for record, t0_ms in self.open_spans:
            observed[record.name] = (
                observed.get(record.name, 0.0) + max(0.0, now_ms - t0_ms)
            )
        return observed


def replay_events(events: EventLog | list[dict[str, object]]) -> StreamView:
    """Reconstruct the span tree and liveness facts of one stream.

    Mirrors the recorder's own stack discipline, so a stream cut off at
    any line yields the same tree the recorder held in memory at that
    moment: spans whose ``end`` never arrived stay on the stack and are
    marked ``status="open"`` with ``wall_ms`` equal to their elapsed
    time up to the last event seen.
    """
    header: dict[str, object] | None = None
    if isinstance(events, EventLog):
        header = events.header
    root = SpanRecord(name="run")
    view = StreamView(root=root, header=header)
    stack: list[SpanRecord] = [root]
    t0_ms: list[float] = [0.0]
    for event in events:
        kind = event.get("ev")
        t_ms = event.get("t_ms")
        if isinstance(t_ms, (int, float)):
            view.last_t_ms = max(view.last_t_ms, float(t_ms))
        unix = event.get("unix")
        if isinstance(unix, (int, float)):
            view.last_unix = max(view.last_unix or 0.0, float(unix))
        if kind == EV_RUN_HEADER:
            view.header = event
            root.name = str(event.get("label", "run"))
        elif kind == EV_START:
            record = SpanRecord(
                name=str(event.get("span", "?")),
                attrs=dict(event.get("attrs") or {}),  # type: ignore[call-overload]
            )
            stack[-1].children.append(record)
            stack.append(record)
            t0_ms.append(float(t_ms) if isinstance(t_ms, (int, float)) else 0.0)
        elif kind == EV_END:
            name = str(event.get("span", "?"))
            if not any(record.name == name for record in stack[1:]):
                continue  # end without a start: stream began mid-run
            while len(stack) > 1:
                record = stack.pop()
                del t0_ms[len(stack):]
                if record.name == name:
                    wall = event.get("wall_ms")
                    record.wall_ms = (
                        float(wall) if isinstance(wall, (int, float)) else 0.0
                    )
                    record.status = str(event.get("status", "ok"))
                    raw = event.get("counters")
                    if isinstance(raw, dict):
                        record.counters = {
                            str(k): float(v) for k, v in raw.items()
                        }
                    view.closed_ms_by_name[name] = (
                        view.closed_ms_by_name.get(name, 0.0) + record.wall_ms
                    )
                    break
        elif kind == EV_HEARTBEAT:
            view.last_hb = event
        elif kind == EV_RUN_END:
            view.completed = True
            view.end_status = str(event.get("status", "ok"))
            wall = event.get("wall_ms")
            if isinstance(wall, (int, float)):
                root.wall_ms = float(wall)
            cpu = event.get("cpu_ms")
            if isinstance(cpu, (int, float)):
                root.cpu_ms = float(cpu)
            if view.end_status is not None:
                root.status = view.end_status
    # Span events carry no absolute clock; estimate one from the header
    # anchor so a stream of pure start/end traffic still advances
    # "last heard from".
    anchor = view.header_unix
    if anchor is not None:
        view.last_unix = max(
            view.last_unix or 0.0, anchor + view.last_t_ms / 1000.0
        )
    # Whatever is still on the stack never closed.
    for index, record in enumerate(stack[1:], start=1):
        start_ms = t0_ms[index] if index < len(t0_ms) else 0.0
        record.status = "open"
        record.wall_ms = max(0.0, view.last_t_ms - start_ms)
        view.open_spans.append((record, start_ms))
    if not view.completed:
        root.status = "open"
        root.wall_ms = view.last_t_ms
    return view


def manifest_from_events(path: Path | str) -> RunManifest:
    """Lift an event stream — finished or torn — into a RunManifest.

    The manifest of a killed run is partial (``incomplete=True``,
    unclosed spans marked ``open``) but loads and renders through every
    existing ``repro obs`` surface.
    """
    events = read_events(path)
    view = replay_events(events)
    run_id = view.run_id or Path(path).stem.replace("events-", "")
    config = (view.header or {}).get("config")
    return RunManifest(
        run_id=run_id,
        label=view.label,
        config_name=None if config is None else str(config),
        seeds={},
        git_sha=None,
        argv=[],
        root=view.root,
        incomplete=not view.completed,
    )


# ----------------------------------------------------------------------
# Tailing: incremental, torn-tail-tolerant stream following
# ----------------------------------------------------------------------
class EventFollower:
    """Incrementally reads complete JSONL lines from a growing stream.

    Only newline-terminated lines are parsed; a partial final line (the
    writer mid-flush) stays buffered until its newline arrives, so a
    concurrent reader never sees a parse error — just a shorter prefix.
    If the file shrinks or is replaced under us (a re-run into the same
    trace dir creates a fresh inode), the follower starts over from the
    new beginning.
    """

    def __init__(self, path: Path | str):
        self.path = Path(path)
        self._offset = 0
        self._buffer = ""
        self.completed = False
        self.events: list[dict[str, object]] = []

    def poll(self) -> list[dict[str, object]]:
        """New complete events since the last poll (empty when none)."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self._offset:
            self._offset = 0
            self._buffer = ""
            self.completed = False
            self.events = []
        with open(self.path, encoding="utf-8") as fh:
            fh.seek(self._offset)
            chunk = fh.read()
            self._offset = fh.tell()
        self._buffer += chunk
        fresh: list[dict[str, object]] = []
        while True:
            newline = self._buffer.find("\n")
            if newline < 0:
                break
            line = self._buffer[:newline].strip()
            self._buffer = self._buffer[newline + 1:]
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # a corrupt middle line; skip, keep following
            if isinstance(event, dict):
                fresh.append(event)
                if event.get("ev") == EV_RUN_END:
                    self.completed = True
        self.events.extend(fresh)
        return fresh

    def follow(
        self,
        *,
        poll_s: float = 0.25,
        timeout_s: float | None = None,
        until_end: bool = True,
    ) -> Iterator[dict[str, object]]:
        """Yield events as they land; stop on run_end or timeout."""
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while True:
            for event in self.poll():
                yield event
            if until_end and self.completed:
                return
            if deadline is not None and time.monotonic() >= deadline:
                return
            time.sleep(poll_s)


def resolve_events_path(
    target: Path | str, *, wait_s: float = 0.0, poll_s: float = 0.2
) -> Path:
    """A concrete events JSONL from a file path or a run directory.

    A directory resolves to its newest ``events-*.jsonl``; with
    ``wait_s`` the resolver waits up to that long for one to appear —
    the tail-a-run-you-just-backgrounded case.
    """
    path = Path(target)
    deadline = time.monotonic() + max(0.0, wait_s)
    while True:
        if path.is_file():
            return path
        if path.is_dir():
            streams = sorted(
                path.glob("events-*.jsonl"),
                key=lambda p: (p.stat().st_mtime, p.name),
            )
            if streams:
                return streams[-1]
        if time.monotonic() >= deadline:
            raise FileNotFoundError(
                f"no events JSONL at {target} (expected a file or a trace "
                "directory containing events-<run_id>.jsonl)"
            )
        time.sleep(poll_s)


def checkpoint_path_for(events_path: Path | str) -> Path | None:
    """The checkpoint manifest sibling of one events stream, if any."""
    path = Path(events_path)
    run_id = path.stem.replace("events-", "")
    candidate = path.parent / f"run-{run_id}.checkpoint.json"
    return candidate if candidate.exists() else None


def heartbeat_dir_for(events_path: Path | str) -> Path:
    """The worker-heartbeat side-channel dir next to one events stream."""
    path = Path(events_path)
    run_id = path.stem.replace("events-", "")
    return path.parent / f"hb-{run_id}"


# ----------------------------------------------------------------------
# Expectations: trend history -> per-span duration budgets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Expectation:
    """Robust duration statistics of one metric across prior runs."""

    metric: str
    median_ms: float
    mad_ms: float
    p95_ms: float
    n: int

    def budget_ms(
        self, *, mad_k: float = 4.0, min_budget_ms: float = 250.0
    ) -> float:
        """Stall threshold: historical p95 plus a MAD margin.

        The same robust scale the trend regression gate uses
        (``mad_k * 1.4826 * MAD``), anchored at the p95 instead of the
        median because a *live* span at p95 is normal, not stalled.
        The floor keeps sub-millisecond spans from flagging on noise.
        """
        return max(
            self.p95_ms + mad_k * MAD_SIGMA * self.mad_ms, min_budget_ms
        )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _p95(values: list[float]) -> float:
    ordered = sorted(values)
    index = max(0, math.ceil(0.95 * len(ordered)) - 1)
    return ordered[index]


def expectations_from_history(
    records: list[TrendRecord], *, min_history: int = 3
) -> dict[str, Expectation]:
    """Per-metric duration expectations from trend records.

    Only metrics observed in at least ``min_history`` runs produce an
    expectation — the same arming rule as the regression gate.  The
    whole-run wall time contributes the :data:`TOTAL_METRIC` entry.
    ``mem.*`` series are sizes, not durations, and are skipped.
    """
    values: dict[str, list[float]] = {}
    for record in records:
        for metric, value in record.series.items():
            if metric.startswith("mem."):
                continue
            values.setdefault(metric, []).append(value)
        if record.total_wall_ms > 0.0:
            values.setdefault(TOTAL_METRIC, []).append(record.total_wall_ms)
    expectations: dict[str, Expectation] = {}
    for metric, series in sorted(values.items()):
        if len(series) < min_history:
            continue
        med = _median(series)
        expectations[metric] = Expectation(
            metric=metric,
            median_ms=med,
            mad_ms=_median([abs(v - med) for v in series]),
            p95_ms=_p95(series),
            n=len(series),
        )
    return expectations


def expectations_for_label(
    history_dir: Path | str, label: str, *, min_history: int = 3
) -> dict[str, Expectation]:
    """Expectations for one run label from a trend history directory.

    Series keys are stable span *names* (the trend convention), so when
    the exact label has no history yet — a ``world`` build judged
    against a history fed by the bench suite — every label's records
    are pooled instead: the span names still line up.
    """
    from repro.obs.trend import load_history

    history = load_history(history_dir)
    records = history.get(label)
    if not records:
        records = [record for recs in history.values() for record in recs]
    return expectations_from_history(records, min_history=min_history)


# ----------------------------------------------------------------------
# Progress / ETA
# ----------------------------------------------------------------------
@dataclass
class WorkerStatus:
    """Liveness of one forked worker, from its heartbeat file."""

    pid: int
    last_ev: str
    last_unix: float
    #: Chunk index of the in-flight task, when mid-task.
    chunk: int | None = None

    @property
    def busy(self) -> bool:
        return self.last_ev in ("task_start", "start")

    def idle_s(self, now_unix: float) -> float:
        return max(0.0, now_unix - self.last_unix)


@dataclass
class LiveStatus:
    """Everything ``repro obs watch`` renders for one poll."""

    view: StreamView
    now_ms: float
    #: Profile-weighted completion in [0, 1], None without history.
    fraction: float | None = None
    eta_ms: float | None = None
    expected_total_ms: float | None = None
    workers: list[WorkerStatus] = field(default_factory=list)


def compute_status(
    view: StreamView,
    expectations: dict[str, Expectation] | None = None,
    *,
    now_unix: float | None = None,
    workers: list[WorkerStatus] | None = None,
) -> LiveStatus:
    """Progress and ETA of a replayed stream against its history.

    Completion is profile-weighted: each expected metric contributes
    ``min(observed, median) / sum(medians)``, so one fast span can't
    claim more than its historical share and the fraction is monotone.
    ETA prefers the historical total (median of ``total_wall_ms``);
    without one it extrapolates from the observed fraction.
    """
    now_ms = view.last_t_ms
    anchor = view.header_unix
    if not view.completed and now_unix is not None and anchor is not None:
        now_ms = max(now_ms, (now_unix - anchor) * 1000.0)
    if view.completed:
        now_ms = view.root.wall_ms or view.last_t_ms
    status = LiveStatus(view=view, now_ms=now_ms, workers=list(workers or []))
    if view.completed:
        status.fraction = 1.0
        status.eta_ms = 0.0
    if not expectations:
        return status
    total = expectations.get(TOTAL_METRIC)
    if total is not None:
        status.expected_total_ms = total.median_ms
    if view.completed:
        return status
    observed = view.observed_ms_by_name(now_ms)
    numer = 0.0
    denom = 0.0
    for metric, expect in expectations.items():
        if metric == TOTAL_METRIC:
            continue
        denom += expect.median_ms
        numer += min(observed.get(metric, 0.0), expect.median_ms)
    if denom > 0.0:
        status.fraction = max(0.0, min(1.0, numer / denom))
    if status.expected_total_ms is not None:
        status.eta_ms = max(0.0, status.expected_total_ms - now_ms)
    elif status.fraction is not None and status.fraction > 0.05:
        status.eta_ms = now_ms * (1.0 - status.fraction) / status.fraction
    return status


# ----------------------------------------------------------------------
# Worker heartbeat side-channel
# ----------------------------------------------------------------------
#: Directory forked workers append their heartbeat lines into.  Module
#: state on purpose: set in the parent before the pool forks, inherited
#: copy-on-write by every worker, exactly like the fork-staging
#: registries in repro.par.pool.
_WORKER_HB_DIR: Path | None = None


def set_worker_heartbeat_dir(path: Path | str | None) -> Path | None:
    """Install (or clear) the side-channel dir; returns the previous one."""
    global _WORKER_HB_DIR
    previous = _WORKER_HB_DIR
    _WORKER_HB_DIR = None if path is None else Path(path)
    if _WORKER_HB_DIR is not None:
        try:
            _WORKER_HB_DIR.mkdir(parents=True, exist_ok=True)
        except OSError:
            _WORKER_HB_DIR = None
    return previous


def worker_heartbeat_dir() -> Path | None:
    """The installed side-channel dir, or None when disabled."""
    return _WORKER_HB_DIR


def worker_beat(ev: str, **fields: object) -> None:
    """Append one liveness line to this process's worker heartbeat file.

    A no-op (one global load, one None check) when no side-channel dir
    is installed.  Each worker writes only its own ``worker-<pid>.jsonl``
    in append mode — no cross-process locking needed — and any OSError
    is swallowed: liveness reporting must never kill the work.
    """
    directory = _WORKER_HB_DIR
    if directory is None:
        return
    line: dict[str, object] = {
        "ev": ev,
        "pid": os.getpid(),
        "unix": time.time(),  # repro-lint: disable=fork-wallclock -- liveness timestamp, not a duration; the watchdog compares it to the reader's wall clock
    }
    line.update(fields)
    try:
        with open(
            directory / f"worker-{os.getpid()}.jsonl", "a", encoding="utf-8"
        ) as fh:
            fh.write(json.dumps(line, separators=(",", ":"), default=str) + "\n")
            fh.flush()
    except OSError:
        pass


def read_worker_heartbeats(
    directory: Path | str,
) -> dict[int, list[dict[str, object]]]:
    """All workers' beats, merged on read, keyed by pid.

    Torn or corrupt lines are skipped (workers may be mid-append); a
    missing directory is simply an empty fleet.
    """
    beats: dict[int, list[dict[str, object]]] = {}
    root = Path(directory)
    if not root.is_dir():
        return beats
    for path in sorted(root.glob("worker-*.jsonl")):
        events: list[dict[str, object]] = []
        try:
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(event, dict):
                        events.append(event)
        except OSError:
            continue
        if not events:
            continue
        raw_pid = events[-1].get("pid")
        try:
            pid = int(raw_pid)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            pid = int(path.stem.replace("worker-", "") or 0)
        beats.setdefault(pid, []).extend(events)
    return beats


def worker_statuses(
    beats: dict[int, list[dict[str, object]]]
) -> list[WorkerStatus]:
    """The latest beat of each worker, pid-ordered."""
    statuses: list[WorkerStatus] = []
    for pid in sorted(beats):
        events = beats[pid]
        last = events[-1]
        unix = last.get("unix")
        chunk = last.get("chunk")
        statuses.append(
            WorkerStatus(
                pid=pid,
                last_ev=str(last.get("ev", "?")),
                last_unix=(
                    float(unix) if isinstance(unix, (int, float)) else 0.0
                ),
                chunk=int(chunk) if isinstance(chunk, int) else None,
            )
        )
    return statuses


# ----------------------------------------------------------------------
# Crash-safe checkpoint manifests
# ----------------------------------------------------------------------
def snapshot_tree(recorder: Recorder, now: float | None = None) -> SpanRecord:
    """A consistent deep copy of the live span tree.

    Spans still on the recorder's stack get ``status="open"`` and a
    ``wall_ms`` stamped from their elapsed time — the same convention
    :func:`replay_events` uses for torn streams, so every downstream
    renderer treats both the same way.
    """
    if now is None:
        now = time.perf_counter()
    open_t0 = {id(record): t0 for record, t0 in recorder.open_spans()}

    def copy(record: SpanRecord) -> SpanRecord:
        t0 = open_t0.get(id(record))
        if t0 is not None:
            wall = max(0.0, (now - t0) * 1000.0)
            status = "open" if record.status == "ok" else record.status
        else:
            wall = record.wall_ms
            status = record.status
        return SpanRecord(
            name=record.name,
            attrs=dict(record.attrs),
            wall_ms=wall,
            cpu_ms=record.cpu_ms,
            rss_peak_delta_kib=record.rss_peak_delta_kib,
            status=status,
            counters=dict(record.counters),
            gauges=dict(record.gauges),
            children=[copy(child) for child in record.children],
        )

    return copy(recorder.root)


class CheckpointWriter:
    """Periodically flushes a partial manifest for crash recovery.

    Driven from the recorder's heartbeat tick (``maybe_write``); writes
    ``run-<id>.checkpoint.json`` atomically (tmp + rename) so a kill
    mid-write can't leave a half manifest, and swallows OSError —
    checkpointing must never take the run down with it.  The identity
    fields (seeds, git sha) are computed once up front, not per flush.
    """

    def __init__(
        self,
        out_dir: Path | str,
        run_id: str,
        *,
        config: object = None,
        argv: list[str] | None = None,
        every_s: float = 5.0,
    ):
        self.out_dir = Path(out_dir)
        self.run_id = run_id
        self.path = self.out_dir / f"run-{run_id}.checkpoint.json"
        self.every_s = float(every_s)
        self._config_name = getattr(config, "name", None)
        self._seeds = seeds_of(config) if config is not None else {}
        self._git_sha = current_git_sha()
        self._argv = list(argv or [])
        self._last = 0.0
        self.writes = 0

    def snapshot(self, recorder: Recorder) -> dict[str, object]:
        """The checkpoint payload: a manifest dict plus liveness marks."""
        return {
            "schema": SCHEMA_VERSION,
            "incomplete": True,
            "run_id": self.run_id,
            "label": recorder.root.name,
            "config_name": self._config_name,
            "seeds": dict(self._seeds),
            "git_sha": self._git_sha,
            "argv": list(self._argv),
            "checkpoint_unix": time.time(),
            "spans": snapshot_tree(recorder).to_dict(),
        }

    def maybe_write(self, recorder: Recorder, *, force: bool = False) -> bool:
        """Flush a checkpoint if ``every_s`` elapsed (or forced)."""
        now = time.perf_counter()
        if not force and now - self._last < self.every_s:
            return False
        self._last = now
        data = self.snapshot(recorder)
        tmp = self.path.with_suffix(".json.tmp")
        try:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(data, indent=2, default=str) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, self.path)
        except OSError:
            return False
        self.writes += 1
        return True

    def remove(self) -> None:
        """Delete the checkpoint (the run completed; the manifest won)."""
        try:
            self.path.unlink()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_ms(ms: float) -> str:
    if ms >= 60_000:
        return f"{ms / 60_000:.1f}m"
    if ms >= 1_000:
        return f"{ms / 1_000:.1f}s"
    return f"{ms:.0f}ms"


def render_tail_line(event: dict[str, object]) -> str | None:
    """One human line per event for ``repro obs tail`` (None: skip)."""
    kind = event.get("ev")
    t_ms = event.get("t_ms")
    stamp = _fmt_ms(float(t_ms)) if isinstance(t_ms, (int, float)) else "-"
    if kind == EV_RUN_HEADER:
        config = event.get("config")
        suffix = f" config={config}" if config else ""
        return (
            f"== run {event.get('run_id', '?')} "
            f"label={event.get('label', 'run')}{suffix} "
            f"pid={event.get('pid', '?')} schema={event.get('schema', '?')}"
        )
    if kind == EV_START:
        depth = event.get("depth")
        indent = "  " * max(0, int(depth) - 1 if isinstance(depth, int) else 0)
        attrs = event.get("attrs")
        extra = ""
        if isinstance(attrs, dict) and attrs:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            extra = f" [{pairs}]"
        return f"{stamp:>8} {indent}> {event.get('span', '?')}{extra}"
    if kind == EV_END:
        status = str(event.get("status", "ok"))
        flag = "" if status == "ok" else f" !{status}"
        wall = event.get("wall_ms")
        wall_s = _fmt_ms(float(wall)) if isinstance(wall, (int, float)) else "?"
        return f"{stamp:>8} < {event.get('span', '?')} ({wall_s}){flag}"
    if kind == EV_HEARTBEAT:
        path = event.get("path") or "(idle)"
        rss = event.get("rss_kib")
        rss_s = f" rss={int(rss) // 1024}MiB" if isinstance(rss, int) else ""
        return f"{stamp:>8} -- hb @{path}{rss_s}"
    if kind == EV_RUN_END:
        wall = event.get("wall_ms")
        wall_s = _fmt_ms(float(wall)) if isinstance(wall, (int, float)) else "?"
        return f"{stamp:>8} == run_end status={event.get('status', '?')} wall={wall_s}"
    return None


def render_progress_bar(fraction: float | None, width: int = 30) -> str:
    if fraction is None:
        return "[" + "?" * width + "]"
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def render_watch(status: LiveStatus, *, now_unix: float | None = None) -> str:
    """The live dashboard body for one ``repro obs watch`` frame."""
    view = status.view
    if now_unix is None:
        now_unix = time.time()
    lines: list[str] = []
    state = "finished" if view.completed else "running"
    if view.completed and view.end_status not in (None, "ok"):
        state = f"finished ({view.end_status})"
    title = f"run {view.run_id or '?'} · {view.label} · {state}"
    lines.append(title)
    lines.append("-" * len(title))
    pct = (
        f"{100.0 * status.fraction:5.1f}%" if status.fraction is not None
        else "   ?  "
    )
    eta = (
        f" ETA {_fmt_ms(status.eta_ms)}"
        if status.eta_ms is not None and not view.completed else ""
    )
    expected = (
        f" (expected total {_fmt_ms(status.expected_total_ms)})"
        if status.expected_total_ms is not None else ""
    )
    lines.append(
        f"{render_progress_bar(status.fraction)} {pct} "
        f"elapsed {_fmt_ms(status.now_ms)}{eta}{expected}"
    )
    if view.last_unix is not None and not view.completed:
        silent = max(0.0, now_unix - view.last_unix)
        lines.append(f"last event: {silent:.1f}s ago")
    if view.open_spans:
        lines.append("open spans:")
        for depth, (record, t0_ms) in enumerate(view.open_spans):
            elapsed = max(0.0, status.now_ms - t0_ms)
            lines.append(
                f"  {'  ' * depth}{record.name}  +{_fmt_ms(elapsed)}"
            )
    counters = view.counters()
    if counters:
        lines.append("counters:")
        for name in sorted(counters)[:12]:
            lines.append(f"  {name} = {counters[name]:,.0f}")
    if status.workers:
        lines.append("workers:")
        for worker in status.workers:
            mark = "busy" if worker.busy else "idle"
            chunk = f" chunk={worker.chunk}" if worker.chunk is not None else ""
            lines.append(
                f"  pid {worker.pid}: {mark}{chunk} "
                f"({worker.last_ev} {worker.idle_s(now_unix):.1f}s ago)"
            )
    return "\n".join(lines)
