"""Stall detection over a live event stream.

The watchdog answers one operational question about a run that hasn't
printed anything lately: *is it still making progress?*  It reads the
same schema-2 event stream the tail/watch surfaces use and flags three
failure shapes, each grounded in evidence rather than a fixed timeout:

- **stalled span** — an open span whose elapsed time exceeds its
  historical budget (p95 + MAD margin from the trend history, the same
  robust statistics as the regression gate);
- **heartbeat gap** — the recorder has emitted nothing (no span
  traffic, no heartbeat) for longer than the configured gap, which
  catches a process wedged inside un-instrumented code or killed
  without cleanup;
- **worker stall** — a forked worker whose heartbeat side-channel shows
  a ``task_start`` without a matching ``task_end`` for too long: the
  parent may look alive (it's blocked in ``result()``) while the worker
  is the thing that hung.

``repro obs watchdog --gate`` exits non-zero on any finding, which is
what lets CI babysit a backgrounded build.  A stream that carries the
``run_end`` sentinel is *finished*: liveness rules don't apply (only a
failed end status is reported, as a warning).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.live import (
    Expectation,
    StreamView,
    WorkerStatus,
    worker_statuses,
)

#: Default seconds of total event silence before flagging the parent.
DEFAULT_HB_GAP_S = 10.0

#: Default seconds a worker may sit inside one task before flagging.
DEFAULT_WORKER_GAP_S = 30.0


@dataclass(frozen=True)
class Finding:
    """One watchdog verdict about a run's liveness."""

    kind: str  # "stalled_span" | "heartbeat_gap" | "worker_stall" | "failed"
    message: str
    severity: str = "error"  # "error" gates; "warning" never does

    def render(self) -> str:
        return f"[{self.severity}] {self.kind}: {self.message}"


def check_stream(
    view: StreamView,
    expectations: dict[str, Expectation] | None = None,
    *,
    now_unix: float | None = None,
    hb_gap_s: float = DEFAULT_HB_GAP_S,
    worker_gap_s: float = DEFAULT_WORKER_GAP_S,
    mad_k: float = 4.0,
    min_budget_ms: float = 250.0,
    worker_beats: dict[int, list[dict[str, object]]] | None = None,
) -> list[Finding]:
    """Evaluate every liveness rule against one replayed stream."""
    if now_unix is None:
        now_unix = time.time()
    findings: list[Finding] = []
    if view.completed:
        if view.end_status not in (None, "ok"):
            findings.append(Finding(
                kind="failed",
                message=(
                    f"run {view.run_id or '?'} finished with "
                    f"status={view.end_status}"
                ),
                severity="warning",
            ))
        return findings

    # Rule 1: total event silence.  The stream's last_unix fuses the
    # absolute stamps heartbeats carry with estimated stamps for span
    # traffic, so a chatty run without heartbeats still counts as alive.
    if view.last_unix is not None:
        gap = now_unix - view.last_unix
        if gap > hb_gap_s:
            findings.append(Finding(
                kind="heartbeat_gap",
                message=(
                    f"no events or heartbeats for {gap:.1f}s "
                    f"(limit {hb_gap_s:.1f}s); last activity at "
                    f"t=+{view.last_t_ms / 1000.0:.1f}s"
                ),
            ))

    # Rule 2: an open span past its historical budget.
    if expectations:
        anchor = view.header_unix
        now_ms = view.last_t_ms
        if anchor is not None:
            now_ms = max(now_ms, (now_unix - anchor) * 1000.0)
        for record, t0_ms in view.open_spans:
            expect = expectations.get(record.name)
            if expect is None:
                continue
            elapsed = max(0.0, now_ms - t0_ms)
            budget = expect.budget_ms(mad_k=mad_k, min_budget_ms=min_budget_ms)
            if elapsed > budget:
                findings.append(Finding(
                    kind="stalled_span",
                    message=(
                        f"span '{record.name}' open for "
                        f"{elapsed / 1000.0:.1f}s, budget "
                        f"{budget / 1000.0:.1f}s (p95 "
                        f"{expect.p95_ms / 1000.0:.1f}s + MAD margin, "
                        f"n={expect.n} runs)"
                    ),
                ))

    # Rule 3: a forked worker stuck inside one task.
    if worker_beats:
        for worker in worker_statuses(worker_beats):
            if not worker.busy:
                continue
            idle = worker.idle_s(now_unix)
            if idle > worker_gap_s:
                chunk = (
                    f" (chunk {worker.chunk})"
                    if worker.chunk is not None else ""
                )
                findings.append(Finding(
                    kind="worker_stall",
                    message=(
                        f"worker pid {worker.pid} has been inside "
                        f"'{worker.last_ev}'{chunk} for {idle:.1f}s "
                        f"(limit {worker_gap_s:.1f}s) with no "
                        "task_end beat"
                    ),
                ))
    return findings


def gate_exit_code(findings: list[Finding]) -> int:
    """0 when no error-severity finding; 1 otherwise (for ``--gate``)."""
    return 1 if any(f.severity == "error" for f in findings) else 0


def render_report(
    view: StreamView,
    findings: list[Finding],
    *,
    workers: list[WorkerStatus] | None = None,
    now_unix: float | None = None,
) -> str:
    """Human summary for the ``repro obs watchdog`` CLI."""
    if now_unix is None:
        now_unix = time.time()
    lines: list[str] = []
    state = "finished" if view.completed else "running"
    lines.append(
        f"watchdog: run {view.run_id or '?'} ({view.label}) — {state}, "
        f"t=+{view.last_t_ms / 1000.0:.1f}s"
    )
    if view.open_spans:
        path = "/".join(record.name for record, _ in view.open_spans)
        lines.append(f"  open: {path}")
    if workers:
        busy = sum(1 for w in workers if w.busy)
        lines.append(f"  workers: {len(workers)} seen, {busy} mid-task")
    if findings:
        for finding in findings:
            lines.append(f"  {finding.render()}")
    else:
        verdict = "complete" if view.completed else "alive"
        lines.append(f"  ok: run looks {verdict}")
    return "\n".join(lines)
