"""Append-only benchmark history and run-to-run trend analysis.

``repro.obs.manifest`` makes one run explainable; this module makes
twenty runs comparable.  A history directory (``obs/history/`` by
convention) holds one JSONL file per run label; every line is one
:class:`TrendRecord` — the wall-time series of a run, keyed by stable
span *names* (``experiment.fig4``, ``world.build``) or benchmark test
names.  Records are ingested from run manifests (``run-<id>.json``) or
from the merged benchmark artifact (``BENCH_obs.json``), and the store
is append-only: ``repro obs ingest`` adds a line, nothing rewrites.

``repro obs trend`` renders each series as a sparkline and flags
regressions with a robust rule: the latest value is compared against the
median of the previous ``window`` runs, and flagged when it exceeds both
``median * (1 + min_rel_pct/100)`` and ``median + mad_k * 1.4826 * MAD``
(the MAD term vanishes on flat histories, so the relative floor is what
catches a clean 2x jump).  Under ``--gate`` a flagged regression exits
non-zero, which is what lets CI accumulate the BENCH trajectory *and*
act on it.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from statistics import median
from typing import Iterable

from repro.obs.manifest import RunManifest, new_run_id

#: Conventional history location, relative to the repo / working dir.
DEFAULT_HISTORY_DIR = Path("obs/history")

#: Trend record schema; bump on breaking layout changes.
TREND_SCHEMA = 1

#: Span names whose wall time is worth tracking across runs, by prefix.
_SERIES_PREFIXES = ("experiment.", "world.", "routing.", "experiments.",
                    "par.")

#: 1 / Phi^-1(3/4): scales a MAD to a normal-consistent sigma.  Public
#: because the live-telemetry budgets (repro.obs.live) use the same
#: robust statistics as this regression gate.
MAD_SIGMA = 1.4826
_MAD_SIGMA = MAD_SIGMA


def metric_unit(metric: str) -> str:
    """Display unit of one series metric.

    Wall-time series are milliseconds; ``mem.*`` series carry KiB
    except the per-unit headline numbers, which are plain bytes.  The
    median+MAD detector is unit-agnostic (for memory, bigger is worse
    exactly as for time), so only rendering needs to know.
    """
    if metric.startswith("mem."):
        return "B" if ".bytes_per_" in metric or metric.startswith("mem.bytes_per_") else "KiB"
    return "ms"

_LABEL_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


@dataclass(frozen=True)
class TrendRecord:
    """One run's contribution to the history of a label."""

    run_id: str
    label: str
    kind: str  # "manifest" or "bench"
    config: str | None
    git_sha: str | None
    total_wall_ms: float
    #: metric name -> wall ms; keys are stable span names or bench ids.
    series: dict[str, float] = field(default_factory=dict)
    #: Execution environment of the run (``cpu_count``, ``workers``,
    #: ``mode``, ``bench_workers``); keys the crossover analyzer
    #: (:mod:`repro.obs.speedup`) uses to group comparable runs.
    env: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "schema": TREND_SCHEMA,
            "run_id": self.run_id,
            "label": self.label,
            "kind": self.kind,
            "config": self.config,
            "git_sha": self.git_sha,
            "total_wall_ms": round(self.total_wall_ms, 3),
            "series": {k: round(v, 3) for k, v in sorted(self.series.items())},
        }
        if self.env:
            data["env"] = dict(sorted(self.env.items()))
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TrendRecord":
        series = data.get("series", {})
        if not isinstance(series, dict):
            raise ValueError("trend record 'series' must be a mapping")
        env = data.get("env", {})
        return cls(
            run_id=str(data.get("run_id", "")),
            label=str(data.get("label", "run")),
            kind=str(data.get("kind", "manifest")),
            config=(None if data.get("config") is None
                    else str(data.get("config"))),
            git_sha=(None if data.get("git_sha") is None
                     else str(data.get("git_sha"))),
            total_wall_ms=float(data.get("total_wall_ms", 0.0)),  # type: ignore[arg-type]
            series={str(k): float(v) for k, v in series.items()},
            env=dict(env) if isinstance(env, dict) else {},
        )


# ----------------------------------------------------------------------
# Ingestion
# ----------------------------------------------------------------------
def record_from_manifest(manifest: RunManifest) -> TrendRecord:
    """Distill a run manifest into its trend series.

    Series keys are span *names* (summed over every occurrence in the
    tree), not slash paths — the same experiment must line up across
    ``repro run``, the runner, and the bench suite even though their
    root labels differ.
    """
    series: dict[str, float] = {}
    for _, record in manifest.root.walk():
        if record.name.startswith(_SERIES_PREFIXES):
            series[record.name] = series.get(record.name, 0.0) + record.wall_ms
        for name, value in record.gauges.items():
            # Memory gauges (e.g. mem.staged_topology_kib) are series of
            # their own; last write along the walk wins, matching
            # RunManifest.gauges().
            if name.startswith("mem."):
                series[name] = value
    # Every manifest carries the root's peak-RSS growth — the coarse
    # memory series that exists even for runs without --memory.
    series["mem.rss_peak_kib"] = float(manifest.root.rss_peak_delta_kib)
    if manifest.memory is not None:
        from repro.obs.memory import memory_trend_series

        series.update(memory_trend_series(manifest.memory))
    return TrendRecord(
        run_id=manifest.run_id,
        label=manifest.label,
        kind="manifest",
        config=manifest.config_name,
        git_sha=manifest.git_sha,
        total_wall_ms=manifest.root.wall_ms,
        series=series,
    )


def record_from_bench(data: dict[str, object]) -> TrendRecord:
    """Distill a merged ``BENCH_obs.json`` artifact into a trend record."""
    series: dict[str, float] = {}
    experiments = data.get("experiments", {})
    if isinstance(experiments, dict):
        for name, entry in experiments.items():
            if isinstance(entry, dict) and "wall_ms" in entry:
                series[f"experiment.{name}"] = float(entry["wall_ms"])  # type: ignore[arg-type]
    benchmarks = data.get("benchmarks", {})
    if isinstance(benchmarks, dict):
        for name, wall_ms in benchmarks.items():
            series[f"bench.{name}"] = float(wall_ms)  # type: ignore[arg-type]
    memory = data.get("memory", {})
    if isinstance(memory, dict):
        for name, value in memory.items():
            key = str(name)
            series[key if key.startswith("mem.") else f"mem.{key}"] = (
                float(value)  # type: ignore[arg-type]
            )
    config = data.get("config")
    git_sha = data.get("git_sha")
    env = {
        key: data[key]
        for key in ("cpu_count", "workers", "mode", "bench_workers")
        if key in data
    }
    return TrendRecord(
        run_id=str(data.get("run_id") or new_run_id()),
        label=str(data.get("label", "bench")),
        kind="bench",
        config=None if config is None else str(config),
        git_sha=None if git_sha is None else str(git_sha),
        total_wall_ms=float(data.get("total_wall_ms", 0.0)),  # type: ignore[arg-type]
        series=series,
        env=env,
    )


def record_from_file(path: Path | str) -> TrendRecord:
    """Ingest either artifact kind: run manifest or BENCH_obs.json."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"not an obs artifact: {path}")
    if "spans" in data:
        return record_from_manifest(RunManifest.from_dict(data))
    if "experiments" in data or "benchmarks" in data:
        return record_from_bench(data)
    raise ValueError(
        f"{path}: neither a run manifest (no 'spans') nor a BENCH artifact "
        "(no 'experiments'/'benchmarks')"
    )


def history_file(history_dir: Path | str, label: str) -> Path:
    """The JSONL file one label's records append to."""
    safe = _LABEL_SAFE.sub("-", label) or "run"
    return Path(history_dir) / f"{safe}.jsonl"


def _existing_run_ids(path: Path) -> set[str]:
    """Run ids already present in one history file (torn tail tolerated)."""
    if not path.exists():
        return set()
    run_ids: set[str] = set()
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail; load_label_history skips it too
            if isinstance(data, dict) and "run_id" in data:
                run_ids.add(str(data["run_id"]))
    return run_ids


def append_record(
    history_dir: Path | str, record: TrendRecord, *, dedupe: bool = True
) -> Path | None:
    """Append one record to its label's history file (created if missing).

    With ``dedupe`` (the default), a record whose run id is already in
    the file is skipped and None is returned — re-ingesting the same
    manifest is idempotent instead of double-counting a run.
    """
    path = history_file(history_dir, record.label)
    if dedupe and record.run_id in _existing_run_ids(path):
        return None
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record.to_dict(), separators=(",", ":"),
                            default=str) + "\n")
    return path


def load_label_history(path: Path | str) -> list[TrendRecord]:
    """Records of one history file, oldest first.

    A truncated final line (a run killed mid-append) is tolerated and
    skipped, matching :func:`repro.obs.events.read_events`.
    """
    records: list[TrendRecord] = []
    with open(path, encoding="utf-8") as fh:
        lines = [line.strip() for line in fh]
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError:
            if any(later for later in lines[index + 1:]):
                raise
            break  # torn tail write; the prefix is still usable
        if isinstance(data, dict):
            records.append(TrendRecord.from_dict(data))
    records.sort(key=lambda r: r.run_id)
    return records


def load_history(history_dir: Path | str) -> dict[str, list[TrendRecord]]:
    """Every label's records under a history directory, oldest first."""
    directory = Path(history_dir)
    if not directory.is_dir():
        return {}
    history: dict[str, list[TrendRecord]] = {}
    for path in sorted(directory.glob("*.jsonl")):
        records = load_label_history(path)
        if records:
            history[records[-1].label] = records
    return history


# ----------------------------------------------------------------------
# Regression detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """The latest run is slower than its recent history says it should be."""

    label: str
    metric: str
    value_ms: float
    baseline_ms: float
    threshold_ms: float
    window: int

    @property
    def delta_pct(self) -> float:
        if self.baseline_ms <= 0.0:
            return 0.0
        return 100.0 * (self.value_ms - self.baseline_ms) / self.baseline_ms

    def render(self) -> str:
        unit = metric_unit(self.metric)
        return (
            f"{self.label}/{self.metric}: {self.value_ms:.1f} {unit} "
            f"vs median {self.baseline_ms:.1f} {unit} over last "
            f"{self.window} runs ({self.delta_pct:+.1f}%, threshold "
            f"{self.threshold_ms:.1f} {unit})"
        )


def detect_regressions(
    records: list[TrendRecord],
    *,
    window: int = 20,
    mad_k: float = 4.0,
    min_rel_pct: float = 25.0,
    min_wall_ms: float = 25.0,
    min_history: int = 3,
) -> list[Regression]:
    """Robust median+MAD check of the latest record against its history.

    For each metric in the latest record with at least ``min_history``
    prior observations inside ``window``: flag when the latest value
    exceeds *both* ``median * (1 + min_rel_pct/100)`` and
    ``median + mad_k * 1.4826 * MAD``.  Metrics where both sides sit
    under ``min_wall_ms`` are timing noise and never flag.
    """
    if len(records) < 2:
        return []
    latest = records[-1]
    prior = records[-(window + 1):-1]
    regressions: list[Regression] = []
    for metric in sorted(latest.series):
        value = latest.series[metric]
        history = [r.series[metric] for r in prior if metric in r.series]
        if len(history) < min_history:
            continue
        baseline = median(history)
        if max(value, baseline) < min_wall_ms:
            continue
        mad = median(abs(v - baseline) for v in history)
        threshold = max(
            baseline * (1.0 + min_rel_pct / 100.0),
            baseline + mad_k * _MAD_SIGMA * mad,
        )
        if value > threshold:
            regressions.append(
                Regression(
                    label=latest.label,
                    metric=metric,
                    value_ms=value,
                    baseline_ms=baseline,
                    threshold_ms=threshold,
                    window=len(history),
                )
            )
    regressions.sort(key=lambda r: (-r.delta_pct, r.metric))
    return regressions


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_trend(
    history: dict[str, list[TrendRecord]],
    *,
    top: int = 12,
    window: int = 20,
    regressions: dict[str, list[Regression]] | None = None,
) -> str:
    """Per-label sparkline report over every tracked metric."""
    # Lazily imported: the obs core stays stdlib-only at import time,
    # and repro.analysis pulls in numpy via its CDF machinery.
    from repro.analysis.asciiplot import render_sparkline

    if not history:
        return "no history recorded (ingest manifests with `repro obs ingest`)"
    lines: list[str] = []
    flagged = {
        (reg.label, reg.metric)
        for regs in (regressions or {}).values()
        for reg in regs
    }
    for label in sorted(history):
        records = history[label][-window:]
        latest = records[-1]
        if lines:
            lines.append("")
        sha = (latest.git_sha or "-")[:10]
        lines.append(
            f"{label}: {len(history[label])} run(s), latest "
            f"{latest.run_id} (git {sha}, "
            f"total {latest.total_wall_ms / 1000.0:.2f}s)"
        )
        metrics = sorted(
            latest.series, key=lambda m: (-latest.series[m], m)
        )[:top]
        if not metrics:
            lines.append("  (no series recorded)")
            continue
        width = max(len(m) for m in metrics)
        for metric in metrics:
            values = [r.series[metric] for r in records if metric in r.series]
            spark = render_sparkline(values, width=window)
            base = median(values[:-1]) if len(values) > 1 else values[-1]
            delta = (
                100.0 * (values[-1] - base) / base if base > 0.0 else 0.0
            )
            mark = "  << REGRESSION" if (label, metric) in flagged else ""
            unit = metric_unit(metric)
            lines.append(
                f"  {metric:{width}}  {spark}  {values[-1]:9.1f} {unit:<3} "
                f"(median {base:.1f}, {delta:+.1f}%){mark}"
            )
    all_regs = [r for regs in (regressions or {}).values() for r in regs]
    lines.append("")
    if all_regs:
        lines.append(f"REGRESSION: {len(all_regs)} metric(s) above the "
                     "median+MAD threshold:")
        lines.extend(f"  {reg.render()}" for reg in all_regs)
    else:
        lines.append("ok: latest runs are within their historical envelope")
    return "\n".join(lines)


def check_history(
    history_dir: Path | str,
    *,
    window: int = 20,
    top: int = 12,
    mad_k: float = 4.0,
    min_rel_pct: float = 25.0,
    min_wall_ms: float = 25.0,
) -> tuple[str, list[Regression]]:
    """Load, analyse, and render a history directory in one call."""
    history = load_history(history_dir)
    regressions = {
        label: detect_regressions(
            records, window=window, mad_k=mad_k,
            min_rel_pct=min_rel_pct, min_wall_ms=min_wall_ms,
        )
        for label, records in history.items()
    }
    regressions = {k: v for k, v in regressions.items() if v}
    text = render_trend(history, top=top, window=window,
                        regressions=regressions)
    return text, [r for regs in regressions.values() for r in regs]


def ingest_files(
    history_dir: Path | str, paths: Iterable[Path | str]
) -> list[tuple[TrendRecord, bool]]:
    """Append every artifact in ``paths`` to the history.

    Returns ``(record, appended)`` pairs; ``appended`` is False for
    records whose run id was already in the history (idempotent
    re-ingest, e.g. the same manifest passed twice or a CI retry).
    """
    results = []
    for path in paths:
        record = record_from_file(path)
        appended = append_record(history_dir, record) is not None
        results.append((record, appended))
    return results
