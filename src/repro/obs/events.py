"""JSONL event streaming for long recordings.

A run that takes minutes should be observable *while it runs*: the
recorder can mirror every span start/end to an append-only JSONL file
through an :class:`EventSink`.  Unlike the manifest (written once at the
end), the event stream is flushed incrementally, so a killed run still
leaves a usable timeline behind.

Stream framing (schema 2): the first line of every stream is a
``run_header`` event (run id, label, config name, pid, absolute start
time), the recorder interleaves periodic ``hb`` heartbeat events
(wall/CPU/RSS, open-span path, counter totals) with the span
``start``/``end`` events, and a clean close appends a terminal
``run_end`` sentinel.  A reader can therefore tell a *finished* stream
(``run_end`` present) from a *stalled or killed* one (stream simply
stops) — :func:`read_events` returns an :class:`EventLog` whose
``completed`` flag makes the distinction one attribute away for every
consumer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Protocol

#: Event-stream layout version, stamped into the ``run_header``.
#: Version 2 added the run_header / hb / run_end framing events.
EVENTS_SCHEMA = 2

#: Event kinds a stream may carry, in the order they typically appear.
EV_RUN_HEADER = "run_header"
EV_START = "start"
EV_END = "end"
EV_HEARTBEAT = "hb"
EV_RUN_END = "run_end"


class EventSink(Protocol):
    """Anything that can receive recorder events."""

    def emit(self, event: dict[str, object]) -> None: ...  # pragma: no cover

    def close(self) -> None: ...  # pragma: no cover


class JsonlEventSink:
    """Appends one JSON object per recorder event to a file.

    The file handle is flushed every ``flush_every`` events so the
    timeline of a long (or crashed) run is salvageable mid-flight.

    The file is opened with create-exclusive (``"x"``) semantics: a
    fresh stream always gets a fresh inode.  When the path already
    exists (a re-run into the same trace directory), the stale file is
    unlinked first and created anew rather than truncated in place —
    a reader tailing the old stream keeps its handle on the old inode
    and sees a stable (if abandoned) prefix, never a file shrinking
    under its read offset.
    """

    def __init__(self, path: Path | str, flush_every: int = 32):
        if flush_every < 1:
            raise ValueError(f"flush_every must be positive: {flush_every!r}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._fh = open(self.path, "x", encoding="utf-8")
        except FileExistsError:
            # Replace, never truncate: give concurrent tail readers the
            # old inode and this stream a new one.
            self.path.unlink()
            self._fh = open(self.path, "x", encoding="utf-8")
        self._flush_every = flush_every
        self._pending = 0
        self._closed = False

    def emit(self, event: dict[str, object]) -> None:
        if self._closed:
            return
        json.dump(event, self._fh, separators=(",", ":"), default=str)
        self._fh.write("\n")
        self._pending += 1
        if self._pending >= self._flush_every:
            self._fh.flush()
            self._pending = 0

    def flush(self) -> None:
        """Force pending events to disk (used around heartbeats)."""
        if not self._closed:
            self._fh.flush()
            self._pending = 0

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.flush()
            self._fh.close()


class ListEventSink:
    """Collects events in memory; the sink used by tests."""

    def __init__(self) -> None:
        self.events: list[dict[str, object]] = []
        self.closed = False

    def emit(self, event: dict[str, object]) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True


class EventLog(list):  # type: ignore[type-arg]
    """The parsed events of one stream, plus liveness metadata.

    A plain ``list`` of event dicts (so every pre-existing consumer
    keeps working unchanged) with two extra attributes:

    - ``completed`` — True when the stream carries a ``run_end``
      sentinel, i.e. the recording closed cleanly.  False means the
      run is still in flight, stalled, or was killed.
    - ``header`` — the ``run_header`` event when the stream has one
      (schema 2 streams always do; pre-header streams return None).
    """

    def __init__(self, events: list[dict[str, object]] | None = None):
        super().__init__(events or [])
        self.completed: bool = any(
            e.get("ev") == EV_RUN_END for e in self
        )
        self.header: dict[str, object] | None = next(
            (e for e in self if e.get("ev") == EV_RUN_HEADER), None
        )


def read_events(path: Path | str) -> EventLog:
    """Parse a JSONL event stream back into an :class:`EventLog`.

    A truncated *final* line — the signature of a run killed mid-write —
    is tolerated and dropped, so the timeline of a crashed run stays
    readable.  A malformed line anywhere else means the file is corrupt,
    not torn, and still raises.  The returned log is a plain list of
    event dicts whose ``completed`` attribute distinguishes a cleanly
    finished stream (``run_end`` seen) from a crashed or in-flight one.
    """
    events: list[dict[str, object]] = []
    with open(path, encoding="utf-8") as fh:
        lines = [line.strip() for line in fh]
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if any(later for later in lines[index + 1:]):
                raise
            break  # torn tail write; keep the parsed prefix
    return EventLog(events)
