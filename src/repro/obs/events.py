"""JSONL event streaming for long recordings.

A run that takes minutes should be observable *while it runs*: the
recorder can mirror every span start/end to an append-only JSONL file
through an :class:`EventSink`.  Unlike the manifest (written once at the
end), the event stream is flushed incrementally, so a killed run still
leaves a usable timeline behind.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Protocol


class EventSink(Protocol):
    """Anything that can receive recorder events."""

    def emit(self, event: dict[str, object]) -> None: ...  # pragma: no cover

    def close(self) -> None: ...  # pragma: no cover


class JsonlEventSink:
    """Appends one JSON object per recorder event to a file.

    The file handle is flushed every ``flush_every`` events so the
    timeline of a long (or crashed) run is salvageable mid-flight.
    """

    def __init__(self, path: Path | str, flush_every: int = 32):
        if flush_every < 1:
            raise ValueError(f"flush_every must be positive: {flush_every!r}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        self._flush_every = flush_every
        self._pending = 0
        self._closed = False

    def emit(self, event: dict[str, object]) -> None:
        if self._closed:
            return
        json.dump(event, self._fh, separators=(",", ":"), default=str)
        self._fh.write("\n")
        self._pending += 1
        if self._pending >= self._flush_every:
            self._fh.flush()
            self._pending = 0

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._fh.flush()
            self._fh.close()


class ListEventSink:
    """Collects events in memory; the sink used by tests."""

    def __init__(self) -> None:
        self.events: list[dict[str, object]] = []
        self.closed = False

    def emit(self, event: dict[str, object]) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True


def read_events(path: Path | str) -> list[dict[str, object]]:
    """Parse a JSONL event stream back into a list of event dicts.

    A truncated *final* line — the signature of a run killed mid-write —
    is tolerated and dropped, so the timeline of a crashed run stays
    readable.  A malformed line anywhere else means the file is corrupt,
    not torn, and still raises.
    """
    events: list[dict[str, object]] = []
    with open(path, encoding="utf-8") as fh:
        lines = [line.strip() for line in fh]
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if any(later for later in lines[index + 1:]):
                raise
            break  # torn tail write; keep the parsed prefix
    return events
