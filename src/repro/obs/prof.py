"""Deterministic, span-aware function profiler.

``repro obs summary`` says *which span* burned the time; this module says
*which functions inside it*.  A :class:`SpanProfiler` keeps **one
deterministic profile table per span path**: the
:class:`~repro.obs.recorder.Recorder` notifies the profiler on every span
push/pop and the profiler switches tables at the boundary, so
``routing.compute`` decomposes into its actual hot functions while
``experiment.fig4`` decomposes into *different* ones even when both call
the same code.

Per-event collection is delegated to the interpreter's C profiling
engine (:mod:`cProfile`, i.e. the stdlib ``_lsprof`` backend of the
``sys.setprofile`` hook — still zero third-party dependencies).  A
SMALL world build emits ~10M profile events; even an *empty* Python
callback on that stream adds over 3x wall time, while the C engine with
C-builtin tracking disabled adds well under 2x.  C builtins therefore do
not get rows of their own — their cost lands in the calling function's
self time, the classic deterministic-profiler convention.

Wall time is *also* accounted per span path at the span boundaries
themselves (two clock reads per push/pop — nothing per call).  At
snapshot time the difference between a path's boundary-measured wall
time and the engine-attributed time is emitted as an explicit
``<enclosing frame>`` row: bytecode of frames that were already on the
stack when the span began (the span-owning function's own loop body,
plus profiler switch cost).  With that row included, per-path self-time
totals match the span tree's self times — the report is internally
consistent with the span tree it sits next to.

The profiler is deterministic: no sampling, no timers; the same run
profiles to the same call counts every time (timings naturally jitter
with the machine).  Single-threaded by design (the profile hook is
per-thread), and never installed unless explicitly requested — the
disabled-tracing fast path of :mod:`repro.obs.recorder` is untouched.
"""

from __future__ import annotations

import cProfile
from dataclasses import dataclass
from time import perf_counter

#: (file, first line, qualname) — identifies one Python function or,
#: with line 0, one C-level builtin.
FuncKey = tuple[str, int, str]

#: Per-path entry cap applied by :meth:`SpanProfiler.snapshot`; the
#: remainder is folded into one ``<trimmed>`` row so self-time totals
#: are preserved exactly.
DEFAULT_TRIM = 60

#: Schema version of the embedded profile record.
PROFILE_SCHEMA = 1


@dataclass(frozen=True)
class FunctionStat:
    """Aggregate cost of one function under one span path."""

    file: str
    line: int
    func: str
    calls: int
    self_ms: float
    cum_ms: float

    @property
    def location(self) -> str:
        """Compact ``file:line`` rendering (module name for builtins)."""
        if self.line <= 0:
            return self.file
        return f"{_short_file(self.file)}:{self.line}"

    def to_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "func": self.func,
            "calls": self.calls,
            "self_ms": round(self.self_ms, 3),
            "cum_ms": round(self.cum_ms, 3),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "FunctionStat":
        return cls(
            file=str(data.get("file", "")),
            line=int(data.get("line", 0)),  # type: ignore[call-overload]
            func=str(data.get("func", "")),
            calls=int(data.get("calls", 0)),  # type: ignore[call-overload]
            self_ms=float(data.get("self_ms", 0.0)),  # type: ignore[arg-type]
            cum_ms=float(data.get("cum_ms", 0.0)),  # type: ignore[arg-type]
        )


def _short_file(path: str) -> str:
    """The last two path components — enough to recognise a module."""
    parts = path.replace("\\", "/").rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else path


@dataclass
class ProfileData:
    """A frozen profiler snapshot: per-span-path function tables."""

    root_label: str
    #: span path -> function stats, sorted by self time descending.
    paths: dict[str, list[FunctionStat]]

    def top_functions(self, path: str, top: int = 10) -> list[FunctionStat]:
        return self.paths.get(path, [])[:top]

    def path_self_ms(self, path: str) -> float:
        """Total profiled self time attributed to one span path."""
        return sum(stat.self_ms for stat in self.paths.get(path, []))

    def overall(self, top: int = 10) -> list[FunctionStat]:
        """Top functions across every span path, merged by function."""
        merged: dict[FuncKey, list[float]] = {}
        for stats in self.paths.values():
            for stat in stats:
                key = (stat.file, stat.line, stat.func)
                entry = merged.setdefault(key, [0.0, 0.0, 0.0])
                entry[0] += stat.calls
                entry[1] += stat.self_ms
                entry[2] += stat.cum_ms
        rows = [
            FunctionStat(
                file=key[0], line=key[1], func=key[2],
                calls=int(entry[0]), self_ms=entry[1], cum_ms=entry[2],
            )
            for key, entry in merged.items()
        ]
        rows.sort(key=lambda s: (-s.self_ms, s.func, s.file))
        return rows[:top]

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": PROFILE_SCHEMA,
            "root_label": self.root_label,
            "paths": {
                path: [stat.to_dict() for stat in stats]
                for path, stats in sorted(self.paths.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "ProfileData":
        raw_paths = data.get("paths", {})
        if not isinstance(raw_paths, dict):
            raise ValueError("profile 'paths' must be a mapping")
        return cls(
            root_label=str(data.get("root_label", "run")),
            paths={
                str(path): [FunctionStat.from_dict(s) for s in stats]
                for path, stats in raw_paths.items()
            },
        )


#: Residual row name: wall time spent in frames that were already on the
#: interpreter stack when the span path became active (the span-owning
#: function's own bytecode), plus profiler switch cost.
ENCLOSING_FRAME = "<enclosing frame>"


def _fold_trimmed(
    stats: list[FunctionStat], trim_per_path: int
) -> list[FunctionStat]:
    """Sort rows by self time and fold those past the cap into one row.

    The ``<trimmed>`` row preserves the per-path call and self-time
    totals exactly.
    """
    stats = sorted(stats, key=lambda s: (-s.self_ms, s.func, s.file))
    if trim_per_path <= 0 or len(stats) <= trim_per_path:
        return stats
    kept, rest = stats[:trim_per_path], stats[trim_per_path:]
    kept.append(
        FunctionStat(
            file="", line=0, func="<trimmed>",
            calls=sum(s.calls for s in rest),
            self_ms=sum(s.self_ms for s in rest),
            cum_ms=0.0,
        )
    )
    return kept


class SpanProfiler:
    """Attributes function time to (span path, function) pairs.

    Lifecycle::

        profiler = SpanProfiler("runner")
        profiler.start()          # engine profile on this thread
        ...                       # recorder calls span_push/span_pop
        profiler.stop()
        data = profiler.snapshot()

    The recorder drives :meth:`span_push` / :meth:`span_pop`; when used
    standalone everything lands under the root label.  ``builtins=True``
    gives C builtins their own rows at roughly 1.5x extra overhead.
    """

    def __init__(self, root_label: str = "run", *, builtins: bool = False):
        self.root_label = root_label
        self._builtins = builtins
        #: span path -> deterministic engine profile for that path.
        self._profiles: dict[str, cProfile.Profile] = {}
        #: span path -> boundary-measured wall seconds with it innermost.
        self._path_wall: dict[str, float] = {}
        self._path_stack: list[str] = [root_label]
        self._active: cProfile.Profile | None = None
        self._last = 0.0
        self._running = False

    # -- span bookkeeping (called by the Recorder) ---------------------
    def span_push(self, name: str) -> None:
        if self._running:
            self._flush_wall()
        path = f"{self._path_stack[-1]}/{name}"
        self._path_stack.append(path)
        if self._running:
            self._activate(path)

    def span_pop(self) -> None:
        if self._running:
            self._flush_wall()
        if len(self._path_stack) > 1:
            self._path_stack.pop()
        if self._running:
            self._activate(self._path_stack[-1])

    def _flush_wall(self) -> None:
        """Close the open wall slice against the innermost span path."""
        now = perf_counter()
        path = self._path_stack[-1]
        self._path_wall[path] = (
            self._path_wall.get(path, 0.0) + now - self._last
        )
        self._last = now

    def _activate(self, path: str) -> None:
        """Switch the engine to the profile table for ``path``."""
        if self._active is not None:
            self._active.disable()
        profile = self._profiles.get(path)
        if profile is None:
            profile = cProfile.Profile()
            self._profiles[path] = profile
        profile.enable(subcalls=False, builtins=self._builtins)
        self._active = profile

    def start(self) -> None:
        """Start profiling on the current thread (idempotent)."""
        if self._running:
            return
        self._running = True
        self._last = perf_counter()
        self._activate(self._path_stack[-1])

    def stop(self) -> None:
        """Stop the engine and close the open wall slice (idempotent)."""
        if not self._running:
            return
        self._flush_wall()
        if self._active is not None:
            self._active.disable()
            self._active = None
        self._running = False
        # Spans abandoned mid-flight (crash unwind without pops) would
        # otherwise leak their path into a later start().
        del self._path_stack[1:]

    # -- results --------------------------------------------------------
    def snapshot(self, trim_per_path: int = DEFAULT_TRIM) -> ProfileData:
        """The collected tables, top ``trim_per_path`` functions per path.

        Rows past the cap are folded into a single ``<trimmed>`` row per
        path so the per-path self-time total is preserved exactly.
        """
        paths: dict[str, list[FunctionStat]] = {}
        for path, profile in self._profiles.items():
            stats: list[FunctionStat] = []
            attributed = 0.0
            for entry in profile.getstats():
                code = entry.code
                if isinstance(code, str):
                    # C builtin (builtins=True): lsprof stores a string
                    # like "<built-in method builtins.len>".
                    key: FuncKey = ("<builtin>", 0, code)
                else:
                    key = (
                        code.co_filename,
                        code.co_firstlineno,
                        getattr(code, "co_qualname", code.co_name),
                    )
                stats.append(
                    FunctionStat(
                        file=key[0], line=key[1], func=key[2],
                        calls=int(entry.callcount),
                        self_ms=entry.inlinetime * 1000.0,
                        cum_ms=entry.totaltime * 1000.0,
                    )
                )
                attributed += entry.inlinetime
            residual = self._path_wall.get(path, 0.0) - attributed
            if residual > 1e-6:
                stats.append(
                    FunctionStat(
                        file="", line=0, func=ENCLOSING_FRAME,
                        calls=0,
                        self_ms=residual * 1000.0,
                        cum_ms=residual * 1000.0,
                    )
                )
            paths[path] = _fold_trimmed(stats, trim_per_path)
        return ProfileData(root_label=self.root_label, paths=paths)


def render_profile(
    profile: ProfileData,
    *,
    top_paths: int = 5,
    top_functions: int = 8,
    min_path_ms: float = 1.0,
) -> str:
    """Per-span-path top-function tables, hottest paths first."""
    ranked = sorted(
        ((profile.path_self_ms(path), path) for path in profile.paths),
        key=lambda pair: (-pair[0], pair[1]),
    )
    shown = [(ms, path) for ms, path in ranked if ms >= min_path_ms]
    lines = [f"profile ({len(profile.paths)} span paths, "
             f"top {min(top_paths, len(shown))} shown by profiled self time):"]
    for path_ms, path in shown[:top_paths]:
        lines.append("")
        lines.append(f"{path}  ({path_ms:.1f} ms profiled)")
        rows = profile.top_functions(path, top_functions)
        width = max((len(stat.func) for stat in rows), default=4)
        lines.append(
            f"  {'function':{width}}  {'calls':>8}  {'self ms':>9}  "
            f"{'cum ms':>9}  location"
        )
        for stat in rows:
            lines.append(
                f"  {stat.func:{width}}  {stat.calls:8d}  "
                f"{stat.self_ms:9.1f}  {stat.cum_ms:9.1f}  {stat.location}"
            )
    if len(lines) == 1:
        lines.append("  (no profiled time recorded)")
    return "\n".join(lines)
