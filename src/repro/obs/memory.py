"""Span-attributed allocation profiling and deep structure size census.

``repro.obs.prof`` says which functions burned the *time*; this module
says where the *bytes* went — the memory counterpart of the profiler and
timeline lenses, and the byte-level evidence ROADMAP item 1's flat-array
routing refactor is gated on.

Two instruments share this module:

**The allocation profiler.**  A :class:`MemoryProfiler` rides the same
span push/pop notifications the cProfile integration uses (see
:class:`repro.obs.prof.SpanProfiler`): at every span boundary it reads
:func:`tracemalloc.get_traced_memory` — two counter loads, not a
snapshot — closes the open *slice* against the innermost span path, and
resets the traced peak so the next slice measures its own high-water
mark.  Because every traced byte belongs to exactly one slice and every
slice to exactly one path, the per-path net totals **telescope**: their
sum equals the run's total net allocation exactly, with no estimation.
Allocations made outside any child span land on the root-label path —
the explicit :data:`ENCLOSING_FRAME` residual that makes the table
reconcile against the span tree instead of silently leaking bytes.  One
full :func:`tracemalloc.take_snapshot` at :meth:`MemoryProfiler.stop`
yields a top-N live-allocation-site table (``file:line`` rows with an
``<other>`` fold preserving the totals).

**The size census.**  :func:`deep_sizeof` is a visited-set recursive
walker over container buffers, ``__dict__``/``__slots__`` attributes,
and ``array``/``bytes`` leaves.  Shared or interned substructures are
counted once per walk (pass one ``seen`` set across several roots to
measure their combined footprint).  :func:`census_routing_table` and
:func:`world_census` apply it to the load-bearing state types — routing
tables, the topology graph, catchments, DNS mapping services, explain
provenance buffers — and report bytes-per-route / bytes-per-AS as the
headline numbers.

Allocation capture is opt-in (``repro run --memory``) and forces serial
execution — tracemalloc is process-local, so traced workers would
produce totals the parent cannot reconcile (see
:func:`repro.par.pool.capture_blocks_parallel`).  When capture is off,
the cost is one ``is not None`` check per span boundary and nothing on
untraced runs.
"""

from __future__ import annotations

import sys
import tracemalloc
import weakref
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

#: Schema version of the manifest's ``"memory"`` payload.
MEMORY_SCHEMA = 1

#: Residual attribution: bytes allocated while no child span was open
#: land on the root-label path; reports render it under this name so the
#: per-path totals visibly sum to the profiler total.
ENCLOSING_FRAME = "<enclosing frame>"

#: Allocation-site rows kept per snapshot before the ``<other>`` fold.
DEFAULT_TOP_SITES = 25

#: Stack frames tracemalloc keeps per allocation.  One frame identifies
#: the allocation site; deeper stacks multiply capture overhead.
TRACE_FRAMES = 1


def _kib(num_bytes: float) -> float:
    return num_bytes / 1024.0


@dataclass(frozen=True)
class PathMemory:
    """Traced allocation attributed to one span path."""

    #: Net traced bytes (allocations minus frees) while this path was
    #: innermost.  May be negative: a span that mostly releases memory.
    net_bytes: int
    #: Largest slice-local traced peak above the slice's starting size —
    #: the path's own allocation high-water mark.
    peak_bytes: int
    #: Number of boundary-to-boundary slices attributed to the path.
    slices: int

    def to_dict(self) -> dict[str, object]:
        return {
            "net_bytes": self.net_bytes,
            "peak_bytes": self.peak_bytes,
            "slices": self.slices,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PathMemory":
        return cls(
            net_bytes=int(data.get("net_bytes", 0)),  # type: ignore[call-overload]
            peak_bytes=int(data.get("peak_bytes", 0)),  # type: ignore[call-overload]
            slices=int(data.get("slices", 0)),  # type: ignore[call-overload]
        )


@dataclass(frozen=True)
class SiteStat:
    """Live bytes still attributed to one allocation site at stop."""

    file: str
    line: int
    size_bytes: int
    count: int

    @property
    def location(self) -> str:
        if self.line <= 0:
            return self.file
        parts = self.file.replace("\\", "/").rsplit("/", 2)
        short = "/".join(parts[-2:]) if len(parts) > 1 else self.file
        return f"{short}:{self.line}"

    def to_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "size_bytes": self.size_bytes,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SiteStat":
        return cls(
            file=str(data.get("file", "")),
            line=int(data.get("line", 0)),  # type: ignore[call-overload]
            size_bytes=int(data.get("size_bytes", 0)),  # type: ignore[call-overload]
            count=int(data.get("count", 0)),  # type: ignore[call-overload]
        )


@dataclass
class MemoryProfile:
    """A frozen allocation-profiler snapshot."""

    root_label: str
    #: Net traced bytes over the whole capture window.
    total_net_bytes: int
    #: Highest traced size above the capture's starting size.
    total_peak_bytes: int
    #: span path -> attribution; includes the root-label residual path.
    paths: dict[str, PathMemory]
    #: Top live allocation sites at stop, ``<other>`` fold included.
    top_sites: list[SiteStat] = field(default_factory=list)

    def reconcile(self) -> tuple[int, int]:
        """``(sum of per-path net bytes, total net bytes)`` — equal by
        construction; the acceptance check of the telescoping design."""
        return (
            sum(path.net_bytes for path in self.paths.values()),
            self.total_net_bytes,
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "root_label": self.root_label,
            "total_net_bytes": self.total_net_bytes,
            "total_peak_bytes": self.total_peak_bytes,
            "paths": {
                path: stat.to_dict()
                for path, stat in sorted(self.paths.items())
            },
            "top_sites": [site.to_dict() for site in self.top_sites],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MemoryProfile":
        raw_paths = data.get("paths", {})
        if not isinstance(raw_paths, dict):
            raise ValueError("memory profile 'paths' must be a mapping")
        raw_sites = data.get("top_sites", [])
        sites = (
            [SiteStat.from_dict(s) for s in raw_sites if isinstance(s, dict)]
            if isinstance(raw_sites, list) else []
        )
        return cls(
            root_label=str(data.get("root_label", "run")),
            total_net_bytes=int(data.get("total_net_bytes", 0)),  # type: ignore[call-overload]
            total_peak_bytes=int(data.get("total_peak_bytes", 0)),  # type: ignore[call-overload]
            paths={
                str(path): PathMemory.from_dict(stat)
                for path, stat in raw_paths.items()
                if isinstance(stat, dict)
            },
            top_sites=sites,
        )


class MemoryProfiler:
    """Attributes traced allocation to span paths at span boundaries.

    Lifecycle mirrors :class:`repro.obs.prof.SpanProfiler`::

        profiler = MemoryProfiler("repro-run")
        profiler.start()          # tracemalloc on (unless already tracing)
        ...                       # recorder drives span_push/span_pop
        profiler.stop()
        data = profiler.snapshot()

    If tracemalloc was already tracing when :meth:`start` ran, the
    profiler piggybacks on the existing session and leaves it running at
    :meth:`stop`; otherwise it owns the session outright.
    """

    def __init__(
        self,
        root_label: str = "run",
        *,
        top_sites: int = DEFAULT_TOP_SITES,
    ):
        self.root_label = root_label
        self._top_sites = top_sites
        #: span path -> [net_bytes, peak_bytes, slices].
        self._paths: dict[str, list[int]] = {}
        self._path_stack: list[str] = [root_label]
        self._running = False
        self._owns_trace = False
        #: Traced size when the capture (and each slice) started.
        self._start_size = 0
        self._slice_size = 0
        self._total_peak = 0
        self._sites: list[SiteStat] = []

    # -- span bookkeeping (called by the Recorder) ---------------------
    def span_push(self, name: str) -> None:
        if self._running:
            self._flush()
        self._path_stack.append(f"{self._path_stack[-1]}/{name}")

    def span_pop(self) -> None:
        if self._running:
            self._flush()
        if len(self._path_stack) > 1:
            self._path_stack.pop()

    def _flush(self) -> None:
        """Close the open slice against the innermost span path."""
        size, peak = tracemalloc.get_traced_memory()
        entry = self._paths.get(self._path_stack[-1])
        if entry is None:
            entry = [0, 0, 0]
            self._paths[self._path_stack[-1]] = entry
        entry[0] += size - self._slice_size
        slice_peak = max(0, peak - self._slice_size)
        if slice_peak > entry[1]:
            entry[1] = slice_peak
        entry[2] += 1
        capture_peak = (self._slice_size - self._start_size) + slice_peak
        if capture_peak > self._total_peak:
            self._total_peak = capture_peak
        tracemalloc.reset_peak()
        self._slice_size = size

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Begin capture (idempotent); starts tracemalloc if needed."""
        if self._running:
            return
        self._owns_trace = not tracemalloc.is_tracing()
        if self._owns_trace:
            tracemalloc.start(TRACE_FRAMES)
        size, _peak = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        self._start_size = size
        self._slice_size = size
        self._running = True

    def stop(self) -> None:
        """Close the open slice, snapshot live sites, end the capture
        (idempotent)."""
        if not self._running:
            return
        self._flush()
        self._sites = _top_allocation_sites(self._top_sites)
        if self._owns_trace:
            tracemalloc.stop()
        self._running = False
        # Paths abandoned by a crash unwind must not leak into a later
        # start() (cf. SpanProfiler.stop).
        del self._path_stack[1:]

    # -- results --------------------------------------------------------
    def snapshot(self) -> MemoryProfile:
        """The collected attribution, residual root path included."""
        return MemoryProfile(
            root_label=self.root_label,
            total_net_bytes=sum(e[0] for e in self._paths.values()),
            total_peak_bytes=self._total_peak,
            paths={
                path: PathMemory(
                    net_bytes=entry[0], peak_bytes=entry[1], slices=entry[2]
                )
                for path, entry in self._paths.items()
            },
            top_sites=list(self._sites),
        )


def _top_allocation_sites(top: int) -> list[SiteStat]:
    """Top live allocation sites of the running trace, rest folded.

    The ``<other>`` row preserves the total live size and block count
    exactly, so the table accounts for every traced byte still alive.
    """
    if not tracemalloc.is_tracing():
        return []
    stats = tracemalloc.take_snapshot().statistics("lineno")
    rows = [
        SiteStat(
            file=stat.traceback[0].filename,
            line=stat.traceback[0].lineno,
            size_bytes=stat.size,
            count=stat.count,
        )
        for stat in stats
    ]
    return _fold_sites(rows, top)


def _fold_sites(rows: list[SiteStat], top: int) -> list[SiteStat]:
    """Rank rows by live size and fold the tail into ``<other>``.

    The fold preserves the summed live size and block count exactly —
    every traced byte still alive stays accounted for.
    """
    rows = sorted(rows, key=lambda s: (-s.size_bytes, s.file, s.line))
    if top <= 0 or len(rows) <= top:
        return rows
    kept, rest = rows[:top], rows[top:]
    kept.append(
        SiteStat(
            file="<other>",
            line=0,
            size_bytes=sum(s.size_bytes for s in rest),
            count=sum(s.count for s in rest),
        )
    )
    return kept


# ----------------------------------------------------------------------
# Deep structure size census
# ----------------------------------------------------------------------

#: CPython pre-allocates one singleton per small int; counting them into
#: a structure's footprint would charge the interpreter to the census.
_SMALL_INT_MIN, _SMALL_INT_MAX = -5, 256

#: Types the walker never descends into or charges: interpreter-owned
#: machinery reachable from almost any object.
_BOUNDARY_TYPES: tuple[type, ...] = (
    type,
    type(sys),              # ModuleType
    type(_kib),             # FunctionType
    type(len),              # BuiltinFunctionType
    type("".join),          # BuiltinMethodType
)

#: Leaf types: ``sys.getsizeof`` already includes their whole buffer.
_LEAF_TYPES: tuple[type, ...] = (
    str, bytes, bytearray, int, float, complex, bool, range, memoryview,
)


def _slot_names(cls: type) -> list[str]:
    """Every ``__slots__`` name along the MRO (deduplicated, in order)."""
    names: list[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__") and name not in names:
                names.append(name)
    return names


def deep_sizeof(
    obj: object, *, seen: set[int] | None = None
) -> tuple[int, int]:
    """``(bytes, objects)`` of one structure, shared parts counted once.

    An iterative visited-set walk: container buffers via
    ``sys.getsizeof``, then down into dict keys/values, sequence and set
    members, ``__dict__`` and ``__slots__`` attributes.  Interned or
    otherwise shared substructures (the same string object referenced
    from two routes, a tuple aliased across tables) are counted exactly
    once per ``seen`` set — pass the same set across several calls to
    measure a combined footprint without double counting.

    Interpreter-owned objects are excluded: ``None``/``True``/``False``,
    CPython's small-int singletons, and anything behind a type, module,
    or function boundary.
    """
    if seen is None:
        seen = set()
    total_bytes = 0
    total_objects = 0
    stack: list[Any] = [obj]
    while stack:
        current = stack.pop()
        if current is None or isinstance(current, bool):
            continue
        if (isinstance(current, int)
                and _SMALL_INT_MIN <= current <= _SMALL_INT_MAX):
            continue
        if isinstance(current, _BOUNDARY_TYPES):
            continue
        ident = id(current)
        if ident in seen:
            continue
        seen.add(ident)
        try:
            total_bytes += sys.getsizeof(current)
        except TypeError:  # pragma: no cover - exotic C objects
            continue
        total_objects += 1
        if isinstance(current, _LEAF_TYPES):
            continue
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
            continue
        if isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
            continue
        # array.array and similar buffer leaves: getsizeof includes the
        # payload and there is nothing to descend into.
        if type(current).__module__ == "array":
            continue
        instance_dict = getattr(current, "__dict__", None)
        if isinstance(instance_dict, dict):
            stack.append(instance_dict)
        for name in _slot_names(type(current)):
            try:
                stack.append(getattr(current, name))
            except AttributeError:
                continue
    return total_bytes, total_objects


@dataclass(frozen=True)
class CensusRow:
    """Deep footprint of one registered structure."""

    name: str
    kind: str
    bytes: int
    objects: int
    #: Derived per-unit numbers (``routes``, ``ases``,
    #: ``bytes_per_route``, ``bytes_per_as``, ...).
    units: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "bytes": self.bytes,
            "objects": self.objects,
        }
        if self.units:
            data["units"] = {k: round(v, 3) for k, v in sorted(self.units.items())}
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CensusRow":
        units = data.get("units", {})
        return cls(
            name=str(data.get("name", "")),
            kind=str(data.get("kind", "")),
            bytes=int(data.get("bytes", 0)),  # type: ignore[call-overload]
            objects=int(data.get("objects", 0)),  # type: ignore[call-overload]
            units=(
                {str(k): float(v) for k, v in units.items()}  # type: ignore[union-attr, arg-type]
                if isinstance(units, dict) else {}
            ),
        )


def census_object(
    name: str, kind: str, obj: object, **units: float
) -> CensusRow:
    """One census row for an arbitrary structure."""
    size, objects = deep_sizeof(obj)
    return CensusRow(name=name, kind=kind, bytes=size, objects=objects,
                     units=dict(units))


def census_routing_table(name: str, table: Any) -> CensusRow:
    """Census row for one :class:`repro.routing.engine.RoutingTable`.

    ``bytes_per_route`` and ``bytes_per_as`` are the headline numbers the
    flat-array routing refactor (ROADMAP item 1) drives down; the row
    gives its byte-identical before/after.

    Tables that expose ``census_state()`` (the flat store) are measured
    through it: the packed columns are the persistent footprint, while
    lazily materialized ``Route`` objects and views are inspection-time
    scratch that would double-count against the shared topology.
    """
    state = getattr(table, "census_state", None)
    target = state() if callable(state) else table
    size, objects = deep_sizeof(target)
    routes = table.num_routes()
    ases = len(table.best)
    units: dict[str, float] = {
        "routes": float(routes),
        "ases": float(ases),
    }
    if routes:
        units["bytes_per_route"] = size / routes
    if ases:
        units["bytes_per_as"] = size / ases
    return CensusRow(name=name, kind="RoutingTable", bytes=size,
                     objects=objects, units=units)


def world_census(world: Any) -> list[CensusRow]:
    """Census of a built world's load-bearing state.

    Covers the topology graph, every announcement's routing table (a
    cache hit after the build), per-announcement catchment summaries,
    the DNS mapping services, and — when a provenance capture is live —
    the explain buffers.  Rows arrive in a deterministic order: shared
    structures first, then per-announcement rows in announcement order.
    """
    from repro.explain import provenance
    from repro.routing.inspect import summarize_catchment

    rows: list[CensusRow] = [
        census_object(
            "topology", "Topology", world.topology,
            nodes=float(world.topology.num_nodes),
        ),
    ]
    engine = world.engine.routing
    announcements = world.registry.announcements()
    total_bytes = 0
    total_routes = 0
    total_ases = 0
    for announcement in announcements:
        table = engine.compute(announcement)
        row = census_routing_table(
            f"routing_table[{announcement.prefix}]", table
        )
        rows.append(row)
        total_bytes += row.bytes
        total_routes += int(row.units.get("routes", 0.0))
        total_ases += int(row.units.get("ases", 0.0))
        summary = summarize_catchment(world.topology, table)
        rows.append(
            census_object(
                f"catchment[{announcement.prefix}]", "CatchmentSummary",
                summary, ases=float(len(summary.as_counts)),
            )
        )
    if announcements:
        units = {
            "tables": float(len(announcements)),
            "routes": float(total_routes),
            "ases": float(total_ases),
        }
        if total_routes:
            units["bytes_per_route"] = total_bytes / total_routes
        if total_ases:
            units["bytes_per_as"] = total_bytes / total_ases
        rows.append(
            CensusRow(
                name="routing_tables[all]", kind="RoutingTable",
                bytes=total_bytes, objects=0, units=units,
            )
        )
    for attr in ("eg3_service", "eg4_service", "im6_service"):
        service = getattr(world, attr, None)
        if service is not None:
            rows.append(
                census_object(f"dns[{attr}]", "GeoMappingService", service)
            )
    recorder = provenance.active()
    if recorder is not None:
        rows.append(
            census_object(
                "explain_buffers", "ProvenanceRecorder", recorder,
                trails=float(
                    len(recorder.selection) + len(recorder.forwarding)
                    + len(recorder.dns)
                ),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Staged-footprint memo (parallel plane)
# ----------------------------------------------------------------------

_FOOTPRINTS: "weakref.WeakKeyDictionary[Any, tuple[int, int]]" = (
    weakref.WeakKeyDictionary()
)


def staged_footprint_bytes(obj: Any, version: int) -> int:
    """Deep size of a staged structure, memoized per ``(obj, version)``.

    ``compute_fanout`` records the staged topology's footprint on every
    fan-out; the walk runs once per topology version (cf. the
    content-hash memo in :mod:`repro.par.cache`) so a traced parallel
    run pays a dict probe per fan-out, not a traversal.
    """
    cached = _FOOTPRINTS.get(obj)
    if cached is not None and cached[0] == version:
        return cached[1]
    size, _objects = deep_sizeof(obj)
    _FOOTPRINTS[obj] = (version, size)  # repro-lint: disable=fork-global-write -- idempotent content-derived memo
    return size


# ----------------------------------------------------------------------
# Manifest payload + rendering
# ----------------------------------------------------------------------

def memory_payload(
    profile: MemoryProfile | None,
    census: Iterable[CensusRow] | None = None,
) -> dict[str, object]:
    """The plain-dict form embedded under a manifest's ``"memory"`` key."""
    payload: dict[str, object] = {"schema": MEMORY_SCHEMA}
    if profile is not None:
        payload["profile"] = profile.to_dict()
    if census is not None:
        payload["census"] = [row.to_dict() for row in census]
    return payload


def _iter_census_rows(payload: Mapping[str, object]) -> Iterator[CensusRow]:
    census = payload.get("census")
    if isinstance(census, list):
        for raw in census:
            if isinstance(raw, dict):
                yield CensusRow.from_dict(raw)


def render_memory_section(
    payload: Mapping[str, object], *, top: int = 12
) -> str:
    """Human-readable report of one manifest's ``"memory"`` payload."""
    parts: list[str] = []
    raw_profile = payload.get("profile")
    if isinstance(raw_profile, dict):
        profile = MemoryProfile.from_dict(raw_profile)
        parts.append(render_memory_profile(profile, top=top))
    rows = list(_iter_census_rows(payload))
    if rows:
        parts.append(render_census(rows, top=top))
    if not parts:
        return "no memory data recorded (re-run with --memory)"
    return "\n\n".join(parts)


def render_memory_profile(profile: MemoryProfile, *, top: int = 12) -> str:
    """Per-span-path allocation table plus the top live sites."""
    attributed, total = profile.reconcile()
    lines = [
        f"allocation by span path (traced net {_kib(total):+,.1f} KiB, "
        f"peak {_kib(profile.total_peak_bytes):,.1f} KiB; "
        f"{len(profile.paths)} paths sum to {_kib(attributed):+,.1f} KiB)",
    ]
    ranked = sorted(
        profile.paths.items(),
        key=lambda item: (-abs(item[1].net_bytes), item[0]),
    )[:top]
    if ranked:
        def label(path: str) -> str:
            if path == profile.root_label:
                return f"{path} {ENCLOSING_FRAME}"
            return path

        width = max(len(label(path)) for path, _stat in ranked)
        lines.append(
            f"  {'path':{width}}  {'net KiB':>12}  {'peak KiB':>12}  "
            f"{'slices':>7}"
        )
        for path, stat in ranked:
            lines.append(
                f"  {label(path):{width}}  {_kib(stat.net_bytes):+12,.1f}  "
                f"{_kib(stat.peak_bytes):12,.1f}  {stat.slices:7d}"
            )
    else:
        lines.append("  (no allocation recorded)")
    if profile.top_sites:
        lines.append("")
        lines.append("top live allocation sites at stop:")
        shown = profile.top_sites[:top + 1]
        width = max(len(site.location) for site in shown)
        lines.append(
            f"  {'site':{width}}  {'live KiB':>12}  {'blocks':>8}"
        )
        for site in shown:
            lines.append(
                f"  {site.location:{width}}  "
                f"{_kib(site.size_bytes):12,.1f}  {site.count:8d}"
            )
    return "\n".join(lines)


def render_census(rows: Iterable[CensusRow], *, top: int = 12) -> str:
    """The structure census table, aggregate rows pinned to the top."""
    rows = list(rows)
    if not rows:
        return "census: (no structures registered)"
    lines = [f"structure census ({len(rows)} structures):"]
    width = max(len(row.name) for row in rows)
    lines.append(
        f"  {'structure':{width}}  {'KiB':>12}  {'objects':>9}  per-unit"
    )
    for row in rows:
        per_unit = ", ".join(
            f"{key}={value:,.1f}"
            for key, value in sorted(row.units.items())
            if key.startswith("bytes_per_")
        )
        counts = ", ".join(
            f"{key}={int(value):,}"
            for key, value in sorted(row.units.items())
            if not key.startswith("bytes_per_")
        )
        tail = "; ".join(part for part in (per_unit, counts) if part)
        lines.append(
            f"  {row.name:{width}}  {_kib(row.bytes):12,.1f}  "
            f"{row.objects:9d}  {tail}"
        )
    return "\n".join(lines)


def memory_trend_series(payload: Mapping[str, object]) -> dict[str, float]:
    """``mem.*`` trend metrics (KiB) distilled from a memory payload.

    Used by :func:`repro.obs.trend.record_from_manifest` so allocation
    totals and census footprints gate under the same median+MAD rule as
    wall times.
    """
    series: dict[str, float] = {}
    raw_profile = payload.get("profile")
    if isinstance(raw_profile, dict):
        profile = MemoryProfile.from_dict(raw_profile)
        series["mem.traced_net_kib"] = _kib(profile.total_net_bytes)
        series["mem.traced_peak_kib"] = _kib(profile.total_peak_bytes)
    for row in _iter_census_rows(payload):
        if row.name.endswith("[all]") or "[" not in row.name:
            series[f"mem.census.{row.name}_kib"] = _kib(row.bytes)
        if "bytes_per_route" in row.units and row.name.endswith("[all]"):
            series["mem.bytes_per_route"] = row.units["bytes_per_route"]
        if "bytes_per_as" in row.units and row.name.endswith("[all]"):
            series["mem.bytes_per_as"] = row.units["bytes_per_as"]
    return series
