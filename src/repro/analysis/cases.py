"""§5.4 case studies: why regional anycast reaches closer sites.

For probe groups with a 5+ ms latency reduction under regional anycast,
the paper maps traceroute hop addresses to AS numbers (pyasn +
RouteViews), identifies IXP addresses via PeeringDB, consults CAIDA's AS
relationships, and classifies the *divergence* between the global and
regional AS paths:

- **AS-relationship override** (44.1% of improved cases) — in global
  anycast, an AS on the path preferred a *customer* route leading to a
  distant site; the regional prefix is absent from that customer cone, so
  the AS falls back to a peer/provider route toward a nearby site.
- **peering-type override** (1.6%) — an AS preferred a *public* peer's
  route over a *route-server* route to a nearby site; attribution
  requires the IXP to publish its route-server feed, which many do not.
- **unknown** — missing hops (IXP space is invisible in BGP), imperfect
  inference, or other policies.

The classifier here plays by the same rules: it reads traceroute outputs
and the link/relationship metadata an analyst could obtain, not the
simulator's ground-truth forwarding decisions.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.measurement.engine import TracerouteResult
from repro.netaddr.ipv4 import IPv4Address
from repro.topology.asys import LinkKind
from repro.topology.graph import Topology


class CaseType(enum.Enum):
    """Classification of one improved probe group."""

    RELATIONSHIP_OVERRIDE = "as-relationship-override"
    PEERING_TYPE_OVERRIDE = "peering-type-override"
    UNKNOWN = "unknown"


def phop_owner(topology: Topology, addr: IPv4Address) -> tuple[str, int] | None:
    """Map a hop address to its owner: ("as", asn) or ("ixp", id).

    Mirrors the paper's IP-to-AS mapping: infrastructure addresses map
    through BGP-announced space; IXP peering LANs are recognised from
    their published (PeeringDB-like) prefixes.
    """
    info = topology.interface_info(addr)
    if info is None:
        return None
    if info.ixp_id is not None:
        return ("ixp", info.ixp_id)
    return ("as", topology.node(info.node_id).asn)


def as_level_path(
    topology: Topology, trace: TracerouteResult, client_asn: int, dest_asn: int
) -> list[int | None]:
    """The AS path visible in a traceroute output.

    Consecutive duplicates are collapsed; hops in IXP space or silent
    hops contribute ``None`` gaps, exactly the visibility an analyst has.
    """
    path: list[int | None] = [client_asn]
    for hop in trace.hops[:-1]:
        if hop.addr is None:
            asn: int | None = None
        else:
            owner = phop_owner(topology, hop.addr)
            asn = owner[1] if owner is not None and owner[0] == "as" else None
        if path and path[-1] == asn and asn is not None:
            continue
        path.append(asn)
    if path[-1] != dest_asn:
        path.append(dest_asn)
    return path


@dataclass
class RelationshipDatabase:
    """A CAIDA-like view of AS relationships and peering types.

    Built from the topology's links — the analogue of CAIDA's inferred
    relationships plus route-server feeds.  Peering-type information for
    an IXP is only available when that IXP publishes its feed.
    """

    #: (a_asn, b_asn) -> set of relationship tags seen between the pair:
    #: "customer" (a is b's customer), "provider" (a is b's provider),
    #: "peer", "rs-peer".
    relations: dict[tuple[int, int], set[str]]

    @classmethod
    def from_topology(cls, topology: Topology) -> "RelationshipDatabase":
        relations: dict[tuple[int, int], set[str]] = {}

        def add(a: int, b: int, tag: str) -> None:
            relations.setdefault((a, b), set()).add(tag)

        for link in topology.links():
            a_asn = topology.node(link.a).asn
            b_asn = topology.node(link.b).asn
            if link.kind is LinkKind.TRANSIT:
                add(a_asn, b_asn, "customer")
                add(b_asn, a_asn, "provider")
            elif link.kind is LinkKind.PEER_ROUTE_SERVER:
                ixp = topology.ixp(link.ixp_id)
                tag = "rs-peer" if ixp.publishes_route_server_feed else "peer-unknown"
                add(a_asn, b_asn, tag)
                add(b_asn, a_asn, tag)
            else:
                add(a_asn, b_asn, "peer")
                add(b_asn, a_asn, "peer")
        return cls(relations=relations)

    def tags(self, a_asn: int, b_asn: int) -> set[str]:
        return self.relations.get((a_asn, b_asn), set())


def classify_divergence(
    db: RelationshipDatabase,
    global_path: list[int | None],
    regional_path: list[int | None],
) -> CaseType:
    """Classify why the regional path avoids the global path's detour.

    Two signatures, checked in the order the paper attributes them:

    - *peering-type override*: at the divergence point the global path
      exits via a public peer while the regional path exits via a
      route-server peer (attributable only when the feed is published);
    - *AS-relationship override*: somewhere at-or-after the divergence,
      the global path descends into a customer cone (a provider→customer
      edge) that the regional path never enters — the distant site lived
      in that cone, and without its prefix the pivot falls back to a
      peer/provider route.
    """
    idx = 0
    while (
        idx < len(global_path)
        and idx < len(regional_path)
        and global_path[idx] == regional_path[idx]
    ):
        idx += 1
    if idx == 0 or idx >= len(global_path) or idx >= len(regional_path):
        return CaseType.UNKNOWN
    pivot = global_path[idx - 1]
    next_global = global_path[idx]
    next_regional = regional_path[idx]
    if pivot is not None and next_global is not None and next_regional is not None:
        tags_global = db.tags(pivot, next_global)
        tags_regional = db.tags(pivot, next_regional)
        if "peer" in tags_global and "rs-peer" in tags_regional:
            return CaseType.PEERING_TYPE_OVERRIDE
    regional_nodes = {n for n in regional_path if n is not None}
    for i in range(idx - 1, len(global_path) - 1):
        a, b = global_path[i], global_path[i + 1]
        if a is None or b is None:
            continue  # IXP hop or silent router: cannot attribute here
        if b in regional_nodes:
            continue
        if "provider" in db.tags(a, b):
            return CaseType.RELATIONSHIP_OVERRIDE
    return CaseType.UNKNOWN


@dataclass
class CaseStudyResult:
    """§5.4 aggregate: fraction of improved groups per case type."""

    counts: Counter

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, case: CaseType) -> float:
        if self.total == 0:
            return 0.0
        return self.counts.get(case, 0) / self.total


def classify_improved_groups(
    topology: Topology,
    improved: list[tuple[TracerouteResult, TracerouteResult, int, int]],
) -> CaseStudyResult:
    """Classify a list of (global_trace, regional_trace, client_asn,
    dest_asn) tuples for improved probe groups."""
    db = RelationshipDatabase.from_topology(topology)
    counts: Counter = Counter()
    for global_trace, regional_trace, client_asn, dest_asn in improved:
        gp = as_level_path(topology, global_trace, client_asn, dest_asn)
        rp = as_level_path(topology, regional_trace, client_asn, dest_asn)
        counts[classify_divergence(db, gp, rp)] += 1
    return CaseStudyResult(counts=counts)
