"""Plain-text table rendering for experiments and benchmarks."""

from __future__ import annotations

from typing import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table.

    Cells are stringified; floats are shown with one decimal.  Used by
    every experiment to print paper-style tables.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.1f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_pct(fraction: float) -> str:
    """A fraction as a paper-style percentage string."""
    return f"{100.0 * fraction:.1f}%"


def format_ms(value: float) -> str:
    return f"{value:.0f}"
