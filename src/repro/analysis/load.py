"""Catchment load distribution under global vs regional anycast.

Anycast is used "to reduce client latency and balance load" (§1), and
the paper's closing argument for regional anycast notes an operator
"need not manage load-balancing and fault tolerance among those sites"
because a regional IP covers multiple sites (§6.2).  This module
quantifies how each configuration spreads clients over sites:

- per-site catchment shares;
- the coefficient of variation (CV) of per-site load — 0 for a perfectly
  even spread;
- the maximum site share (the hot-spot an operator must provision for).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.measurement.engine import PingResult


@dataclass(frozen=True)
class LoadDistribution:
    """Catchment load over the sites of one configuration."""

    label: str
    #: site node id → number of probes caught.
    load: dict[int, int]
    #: Sites that were announced but caught nobody.
    empty_sites: int

    @property
    def total(self) -> int:
        return sum(self.load.values())

    @property
    def num_sites(self) -> int:
        return len(self.load) + self.empty_sites

    def share_of(self, node_id: int) -> float:
        if self.total == 0:
            return 0.0
        return self.load.get(node_id, 0) / self.total

    @property
    def max_share(self) -> float:
        if self.total == 0:
            return 0.0
        return max(self.load.values()) / self.total

    @property
    def coefficient_of_variation(self) -> float:
        """CV of per-site load, counting announced-but-empty sites."""
        if self.num_sites == 0 or self.total == 0:
            return 0.0
        counts = list(self.load.values()) + [0] * self.empty_sites
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 0.0
        var = sum((c - mean) ** 2 for c in counts) / len(counts)
        return math.sqrt(var) / mean


def load_distribution(
    label: str,
    pings: dict[int, PingResult],
    announced_sites: list[int],
) -> LoadDistribution:
    """Build a :class:`LoadDistribution` from ping catchments."""
    counts: Counter = Counter(
        r.catchment for r in pings.values() if r.catchment is not None
    )
    announced = set(announced_sites)
    unknown = set(counts) - announced
    if unknown:
        raise ValueError(
            f"{label}: catchments outside the announced sites: {sorted(unknown)}"
        )
    return LoadDistribution(
        label=label,
        load={node: counts[node] for node in sorted(counts)},
        empty_sites=len(announced - set(counts)),
    )
