"""Terminal CDF plots and sparklines.

The paper's figures are CDF plots; for terminal-first workflows this
module renders a set of labelled CDFs as an ASCII chart so experiment
output can be eyeballed without leaving the shell (``python -m repro run
fig6 --plots``).  :func:`render_sparkline` is the one-line counterpart
used by ``repro obs trend`` to show a wall-time series per experiment.
"""

from __future__ import annotations

from repro.analysis.cdf import EmpiricalCDF

#: Marker characters cycled across series.
_MARKERS = "ox+*#@%&"

#: Eight-level bar characters for one-line series rendering.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def render_sparkline(
    values: list[float],
    width: int = 32,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """One-line bar rendering of a numeric series, oldest first.

    The last ``width`` values are shown, scaled between ``lo`` and
    ``hi`` (default: the series min/max).  A flat series renders at the
    lowest level so a later jump is visually unmissable.
    """
    if not values:
        return ""
    shown = values[-width:]
    low = min(shown) if lo is None else lo
    high = max(shown) if hi is None else hi
    span = high - low
    if span <= 0.0:
        return _SPARK_LEVELS[0] * len(shown)
    top = len(_SPARK_LEVELS) - 1
    chars = []
    for value in shown:
        frac = (value - low) / span
        level = int(round(frac * top))
        chars.append(_SPARK_LEVELS[min(max(level, 0), top)])
    return "".join(chars)


def render_cdf_plot(
    series: dict[str, EmpiricalCDF],
    width: int = 72,
    height: int = 16,
    x_max: float | None = None,
    x_label: str = "ms",
    title: str | None = None,
) -> str:
    """Render labelled CDFs on one ASCII chart.

    The x axis spans [0, x_max] (default: the 98th percentile of the
    widest series, rounded up); the y axis spans [0, 1].
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 20 or height < 5:
        raise ValueError("plot area too small")
    if x_max is None:
        x_max = max(cdf.percentile(98) for cdf in series.values())
        x_max = max(1.0, float(int(x_max / 10.0 + 1) * 10))
    grid = [[" "] * width for _ in range(height)]
    for idx, (label, cdf) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for col in range(width):
            x = x_max * col / (width - 1)
            y = cdf.fraction_at(x)
            row = height - 1 - int(round(y * (height - 1)))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        axis = f"{frac:4.2f} |"
        lines.append(axis + "".join(row))
    lines.append("     +" + "-" * width)
    left = "0"
    mid = f"{x_max / 2:.0f}"
    right = f"{x_max:.0f} {x_label}"
    pad = width - len(left) - len(mid) - len(right)
    lines.append("      " + left + " " * (pad // 2) + mid
                 + " " * (pad - pad // 2) + right)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}"
        for i, label in enumerate(series)
    )
    lines.append("      " + legend)
    return "\n".join(lines)
