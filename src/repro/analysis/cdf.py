"""Empirical CDFs and percentiles over probe-group metrics."""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass


def percentile(values: list[float], p: float) -> float:
    """The p-th percentile (0 < p ≤ 100) with linear interpolation.

    Matches the convention of numpy's default ("linear") method, which is
    what measurement papers conventionally report.
    """
    if not values:
        raise ValueError("percentile of empty data is undefined")
    if not 0 < p <= 100:
        raise ValueError(f"percentile must be in (0, 100]: {p!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical distribution over one metric."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("an empirical CDF needs at least one value")
        object.__setattr__(self, "values", tuple(sorted(self.values)))

    @classmethod
    def of(cls, values: list[float]) -> "EmpiricalCDF":
        return cls(values=tuple(values))

    def __len__(self) -> int:
        return len(self.values)

    def fraction_at(self, x: float) -> float:
        """P(X ≤ x)."""
        return bisect.bisect_right(self.values, x) / len(self.values)

    def fraction_above(self, x: float) -> float:
        """P(X > x), e.g. the share of groups over 100 ms (§5.2)."""
        return 1.0 - self.fraction_at(x)

    def percentile(self, p: float) -> float:
        return percentile(list(self.values), p)

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    def series(self, max_points: int = 200) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting, downsampled."""
        n = len(self.values)
        step = max(1, n // max_points)
        points = [
            (self.values[i], (i + 1) / n) for i in range(0, n, step)
        ]
        if points[-1][1] < 1.0:
            points.append((self.values[-1], 1.0))
        return points
