"""DNS mapping efficiency classification (§5.1, Table 2).

For each probe group the paper compares the RTT of the regional IP
**returned by DNS** against the group's lowest RTT over **all** regional
IPs:

- ``EFFICIENT`` — the returned IP is within 5 ms of the best;
- ``REGION_SUBOPTIMAL`` (✓Region, ΔRTT ≥ 5 ms) — DNS returned the region
  *intended* for the client's country, but a different region's IP is
  ≥ 5 ms faster (a rigid-partition cost: the US/CA border, Russia);
- ``WRONG_REGION`` (×Region, ΔRTT ≥ 5 ms) — DNS returned a region not
  intended for the client's country, typically an IP-geolocation error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cdn.deployment import RegionalDeployment
from repro.geo.areas import Area
from repro.measurement.grouping import ProbeGroup
from repro.netaddr.ipv4 import IPv4Address

#: "We consider 5 ms a reasonable threshold to differentiate the
#: performance of two CDN sites" (§5.1).
DELTA_RTT_THRESHOLD_MS = 5.0


class MappingClass(enum.Enum):
    """Table 2's three row groups."""

    EFFICIENT = "dRTT<5ms"
    REGION_SUBOPTIMAL = "vRegion,dRTT>=5ms"
    WRONG_REGION = "xRegion,dRTT>=5ms"


@dataclass(frozen=True)
class GroupMapping:
    """Per-group classification inputs and outcome."""

    group_key: tuple[str, int]
    area: Area
    received_addr: IPv4Address
    received_region: str | None
    intended_region: str
    rtt_received_ms: float
    rtt_best_ms: float
    outcome: MappingClass

    @property
    def delta_rtt_ms(self) -> float:
        return self.rtt_received_ms - self.rtt_best_ms


@dataclass
class MappingEfficiency:
    """Aggregated Table 2 numbers for one (hostset, DNS mode)."""

    groups: list[GroupMapping]

    def fraction(self, area: Area, outcome: MappingClass) -> float:
        in_area = [g for g in self.groups if g.area is area]
        if not in_area:
            return 0.0
        return sum(1 for g in in_area if g.outcome is outcome) / len(in_area)

    def counts(self, area: Area) -> dict[MappingClass, int]:
        in_area = [g for g in self.groups if g.area is area]
        return {
            outcome: sum(1 for g in in_area if g.outcome is outcome)
            for outcome in MappingClass
        }


def classify_mapping(
    deployment: RegionalDeployment,
    group: ProbeGroup,
    received_addr: IPv4Address,
    rtt_by_addr: dict[IPv4Address, float],
    threshold_ms: float = DELTA_RTT_THRESHOLD_MS,
) -> GroupMapping | None:
    """Classify one probe group's DNS mapping.

    ``rtt_by_addr`` holds the group's (median) RTT to every regional
    address; returns None when the received address was not measured.
    """
    if received_addr not in rtt_by_addr:
        return None
    rtt_received = rtt_by_addr[received_addr]
    rtt_best = min(rtt_by_addr.values())
    received_region = deployment.region_of_address(received_addr)
    intended_region = deployment.region_map.region_for(group.country)
    if rtt_received - rtt_best < threshold_ms:
        outcome = MappingClass.EFFICIENT
    elif received_region == intended_region:
        outcome = MappingClass.REGION_SUBOPTIMAL
    else:
        outcome = MappingClass.WRONG_REGION
    return GroupMapping(
        group_key=group.key,
        area=group.area,
        received_addr=received_addr,
        received_region=received_region,
        intended_region=intended_region,
        rtt_received_ms=rtt_received,
        rtt_best_ms=rtt_best,
        outcome=outcome,
    )
