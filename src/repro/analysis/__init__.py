"""Analysis: the paper's estimators, comparisons, and case studies.

- :mod:`repro.analysis.cdf` — empirical CDFs and the percentile
  conventions used by every figure and table.
- :mod:`repro.analysis.mapping` — DNS mapping efficiency classification
  (Table 2): efficient (ΔRTT < 5 ms), ✓Region sub-optimal, ×Region.
- :mod:`repro.analysis.compare` — the §5.3 regional-vs-global comparison:
  overlap filtering of sites and peers, per-group RTT/distance deltas
  (Fig. 5), the better/similar/worse × closer/same/further cross-tab
  (Table 4), tail-latency percentiles (Table 3), and the same-site
  validation population (Fig. 8 / Appendix D).
- :mod:`repro.analysis.cases` — the §5.4 BGP case-study classifier:
  AS-relationship overrides vs peering-type overrides.
- :mod:`repro.analysis.report` — plain-text table rendering shared by
  experiments and benchmarks.
"""

from repro.analysis.cdf import EmpiricalCDF, percentile
from repro.analysis.compare import ComparisonFilter, GroupComparison, RegionalGlobalComparison
from repro.analysis.mapping import MappingClass, MappingEfficiency, classify_mapping
from repro.analysis.report import render_table

__all__ = [
    "ComparisonFilter",
    "EmpiricalCDF",
    "GroupComparison",
    "MappingClass",
    "MappingEfficiency",
    "RegionalGlobalComparison",
    "classify_mapping",
    "percentile",
    "render_table",
]
