"""Site-withdrawal resilience analysis.

§4.5 establishes that regional prefixes are globally reachable, giving
regional anycast robustness: "even if DNS returns a regional IP
unintended for a client's geographic area, the client can still reach
the CDN site announcing [it]".  The same property underlies failover —
when a site withdraws its announcement, BGP reconverges and the site's
catchment redistributes to the surviving sites.

This module quantifies that: for each site of a deployment, withdraw it,
re-measure the probes it used to serve, and report where they land and
what the failover costs in latency.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass

from repro.anycast.network import AnycastNetwork
from repro.measurement.engine import MeasurementEngine
from repro.measurement.probes import Probe


@dataclass(frozen=True)
class SiteWithdrawalImpact:
    """Effect of withdrawing one site from an anycast announcement."""

    site_name: str
    #: Probes whose baseline catchment was this site.
    affected_probes: int
    #: Fraction of affected probes still served after withdrawal.
    reachable_fraction: float
    #: Mean RTT of affected probes before/after, in ms.
    mean_rtt_before_ms: float
    mean_rtt_after_ms: float
    #: Where the affected probes land after withdrawal (site name → count).
    failover_catchments: dict[str, int]

    @property
    def mean_penalty_ms(self) -> float:
        return self.mean_rtt_after_ms - self.mean_rtt_before_ms


def site_withdrawal_study(
    network: AnycastNetwork,
    site_names: list[str],
    engine: MeasurementEngine,
    probes: list[Probe],
) -> list[SiteWithdrawalImpact]:
    """Withdraw each site in turn and measure the failover.

    The baseline is a fresh anycast announcement from all ``site_names``;
    each scenario announces a fresh prefix from the survivors.  All
    prefixes are registered with the engine's registry.
    """
    if len(site_names) < 2:
        raise ValueError("withdrawal study needs at least two sites")
    if not probes:
        raise ValueError("withdrawal study needs probes")

    def measure(sites: list[str]):
        announcement = network.announcement(
            network.allocate_service_prefix(), sites
        )
        if engine.registry.lookup(announcement.prefix.address(1)) is None:
            engine.registry.register(announcement)
        addr = announcement.prefix.address(1)
        results = {}
        for probe in probes:
            results[probe.probe_id] = engine.ping(probe, addr)
        return results

    baseline = measure(list(site_names))
    site_of_node = {
        network.site(name).node_id: name for name in site_names
    }
    impacts: list[SiteWithdrawalImpact] = []
    for withdrawn in site_names:
        withdrawn_node = network.site(withdrawn).node_id
        affected = [
            p for p in probes
            if baseline[p.probe_id].catchment == withdrawn_node
        ]
        if not affected:
            impacts.append(
                SiteWithdrawalImpact(
                    site_name=withdrawn,
                    affected_probes=0,
                    reachable_fraction=1.0,
                    mean_rtt_before_ms=0.0,
                    mean_rtt_after_ms=0.0,
                    failover_catchments={},
                )
            )
            continue
        survivors = [s for s in site_names if s != withdrawn]
        after = measure(survivors)
        before_rtts = [baseline[p.probe_id].rtt_ms for p in affected]
        after_results = [after[p.probe_id] for p in affected]
        reachable = [r for r in after_results if r.reachable]
        catchments: Counter = Counter()
        for r in reachable:
            catchments[site_of_node.get(r.catchment, str(r.catchment))] += 1
        impacts.append(
            SiteWithdrawalImpact(
                site_name=withdrawn,
                affected_probes=len(affected),
                reachable_fraction=len(reachable) / len(affected),
                mean_rtt_before_ms=statistics.fmean(before_rtts),
                mean_rtt_after_ms=(
                    statistics.fmean(r.rtt_ms for r in reachable)
                    if reachable else float("inf")
                ),
                failover_catchments=dict(catchments),
            )
        )
    return impacts
