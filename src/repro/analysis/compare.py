"""The §5.3 regional-vs-global comparison pipeline.

To compare Imperva's regional CDN against its global-anycast DNS network
fairly, the paper filters the probe population down to measurements that
exercise the *same* infrastructure in both networks:

1. drop probes without a valid (attributable) p-hop in either traceroute;
2. drop probes that reach a site not present in both networks;
3. per overlapping site, build the set of peers (ASes or IXPs owning the
   p-hops) observed in both networks, and drop probes that reach their
   site via a peer outside the common set.

What remains (82.1% of groups in the paper) supports Fig. 4c, Fig. 5,
Table 3, Table 4, and the Fig. 8 same-site validation.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.analysis.cdf import EmpiricalCDF, percentile
from repro.geo.areas import Area
from repro.geo.atlas import City
from repro.measurement.grouping import ProbeGroup
from repro.measurement.probes import Probe

#: ΔRTT threshold separating better/similar/worse groups (Table 4).
COMPARISON_THRESHOLD_MS = 5.0

#: A p-hop owner: ("as", asn) for BGP-visible space, ("ixp", id) for IXP
#: peering LANs (identified via PeeringDB-like published prefixes).
PeerOwner = tuple[str, int]


@dataclass(frozen=True)
class ProbeObservation:
    """One probe's measurement of one network (regional or global)."""

    probe_id: int
    rtt_ms: float | None
    #: Inferred catchment site city (from the §4.4 pipeline).
    site: City | None
    #: Owner of the p-hop (None when unattributable — filtered out).
    peer_owner: PeerOwner | None

    @property
    def valid(self) -> bool:
        return self.rtt_ms is not None and self.site is not None and self.peer_owner is not None


@dataclass
class ComparisonFilter:
    """Accounting of the §5.3 filtering steps."""

    total_groups: int = 0
    dropped_no_phop: int = 0
    dropped_site_overlap: int = 0
    dropped_peer_overlap: int = 0
    retained_groups: int = 0

    @property
    def retained_fraction(self) -> float:
        if self.total_groups == 0:
            return 0.0
        return self.retained_groups / self.total_groups


@dataclass(frozen=True)
class GroupComparison:
    """One probe group's paired regional/global measurement."""

    group_key: tuple[str, int]
    area: Area
    rtt_regional_ms: float
    rtt_global_ms: float
    dist_regional_km: float
    dist_global_km: float
    site_regional: City
    site_global: City

    @property
    def delta_rtt_ms(self) -> float:
        return self.rtt_regional_ms - self.rtt_global_ms

    @property
    def delta_dist_km(self) -> float:
        return self.dist_regional_km - self.dist_global_km

    @property
    def performance(self) -> str:
        """Table 4 row: 'better' / 'similar' / 'worse' in regional."""
        if self.delta_rtt_ms < -COMPARISON_THRESHOLD_MS:
            return "better"
        if self.delta_rtt_ms > COMPARISON_THRESHOLD_MS:
            return "worse"
        return "similar"

    @property
    def site_relation(self) -> str:
        """Table 4 column: 'closer' / 'same' / 'further' site in regional."""
        if self.site_regional.iata == self.site_global.iata:
            return "same"
        return "closer" if self.dist_regional_km < self.dist_global_km else "further"


@dataclass
class RegionalGlobalComparison:
    """Filtered, paired per-group comparison plus its derived statistics."""

    groups: list[GroupComparison]
    filter_stats: ComparisonFilter

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        probe_groups: list[ProbeGroup],
        regional: dict[int, ProbeObservation],
        global_: dict[int, ProbeObservation],
        overlapping_sites: set[str],
    ) -> "RegionalGlobalComparison":
        """Run the three §5.3 filters and aggregate to probe groups."""
        stats = ComparisonFilter(total_groups=len(probe_groups))
        # Common peers per overlapping site, from all probes' p-hops.
        peers_regional: dict[str, set[PeerOwner]] = defaultdict(set)
        peers_global: dict[str, set[PeerOwner]] = defaultdict(set)
        for obs in regional.values():
            if obs.valid and obs.site.iata in overlapping_sites:
                peers_regional[obs.site.iata].add(obs.peer_owner)
        for obs in global_.values():
            if obs.valid and obs.site.iata in overlapping_sites:
                peers_global[obs.site.iata].add(obs.peer_owner)
        common_peers = {
            iata: peers_regional[iata] & peers_global[iata]
            for iata in overlapping_sites
        }

        def drop_reason(
            reg: ProbeObservation, glob: ProbeObservation
        ) -> str | None:
            """The paper's three filters, applied in order, to the pair."""
            if not reg.valid or not glob.valid:
                return "no_phop"
            if (
                reg.site.iata not in overlapping_sites
                or glob.site.iata not in overlapping_sites
            ):
                return "site"
            if (
                reg.peer_owner not in common_peers[reg.site.iata]
                or glob.peer_owner not in common_peers[glob.site.iata]
            ):
                return "peer"
            return None

        comparisons: list[GroupComparison] = []
        for group in probe_groups:
            reasons: Counter = Counter()
            reg_kept: list[tuple[Probe, ProbeObservation]] = []
            glob_kept: list[tuple[Probe, ProbeObservation]] = []
            for probe in group.probes:
                reg = regional.get(probe.probe_id)
                glob = global_.get(probe.probe_id)
                if reg is None or glob is None:
                    reasons["no_phop"] += 1
                    continue
                reason = drop_reason(reg, glob)
                if reason is not None:
                    reasons[reason] += 1
                    continue
                reg_kept.append((probe, reg))
                glob_kept.append((probe, glob))
            if not reg_kept:
                if reasons.most_common():
                    top = reasons.most_common(1)[0][0]
                    if top == "no_phop":
                        stats.dropped_no_phop += 1
                    elif top == "site":
                        stats.dropped_site_overlap += 1
                    else:
                        stats.dropped_peer_overlap += 1
                continue
            stats.retained_groups += 1
            comparisons.append(
                cls._aggregate_group(group, reg_kept, glob_kept)
            )
        return cls(groups=comparisons, filter_stats=stats)

    @staticmethod
    def _aggregate_group(
        group: ProbeGroup,
        reg_kept: list[tuple[Probe, ProbeObservation]],
        glob_kept: list[tuple[Probe, ProbeObservation]],
    ) -> GroupComparison:
        import statistics

        def majority_site(kept: list[tuple[Probe, ProbeObservation]]) -> City:
            counts: Counter = Counter(obs.site.iata for _, obs in kept)
            winner = counts.most_common(1)[0][0]
            for _, obs in kept:
                if obs.site.iata == winner:
                    return obs.site
            raise AssertionError("unreachable")

        site_reg = majority_site(reg_kept)
        site_glob = majority_site(glob_kept)
        rtt_reg = statistics.median(obs.rtt_ms for _, obs in reg_kept)
        rtt_glob = statistics.median(obs.rtt_ms for _, obs in glob_kept)
        dist_reg = statistics.median(
            probe.location.distance_km(obs.site.location) for probe, obs in reg_kept
        )
        dist_glob = statistics.median(
            probe.location.distance_km(obs.site.location) for probe, obs in glob_kept
        )
        return GroupComparison(
            group_key=group.key,
            area=group.area,
            rtt_regional_ms=rtt_reg,
            rtt_global_ms=rtt_glob,
            dist_regional_km=dist_reg,
            dist_global_km=dist_glob,
            site_regional=site_reg,
            site_global=site_glob,
        )

    # ------------------------------------------------------------------
    def in_area(self, area: Area) -> list[GroupComparison]:
        return [g for g in self.groups if g.area is area]

    def tail_latency(self, area: Area, percentiles: tuple[int, ...] = (80, 90, 95)) -> dict[int, tuple[float, float]]:
        """Table 3 cells: {p: (regional, global)} for one area."""
        in_area = self.in_area(area)
        if not in_area:
            return {}
        reg = [g.rtt_regional_ms for g in in_area]
        glob = [g.rtt_global_ms for g in in_area]
        return {p: (percentile(reg, p), percentile(glob, p)) for p in percentiles}

    def crosstab(self, area: Area) -> dict[str, dict[str, float]]:
        """Table 4: performance row → site-relation fractions."""
        result: dict[str, dict[str, float]] = {}
        in_area = self.in_area(area)
        for perf in ("better", "similar", "worse"):
            rows = [g for g in in_area if g.performance == perf]
            if not rows:
                result[perf] = {"closer": 0.0, "same": 0.0, "further": 0.0, "count": 0}
                continue
            counts = Counter(g.site_relation for g in rows)
            result[perf] = {
                "closer": counts.get("closer", 0) / len(rows),
                "same": counts.get("same", 0) / len(rows),
                "further": counts.get("further", 0) / len(rows),
                "count": len(rows),
            }
        return result

    def delta_rtt_cdf(self, area: Area) -> EmpiricalCDF | None:
        in_area = self.in_area(area)
        if not in_area:
            return None
        return EmpiricalCDF.of([g.delta_rtt_ms for g in in_area])

    def delta_dist_cdf(self, area: Area) -> EmpiricalCDF | None:
        in_area = self.in_area(area)
        if not in_area:
            return None
        return EmpiricalCDF.of([g.delta_dist_km for g in in_area])

    def same_site_groups(self) -> list[GroupComparison]:
        """The Fig. 8 validation population: same catchment site in both."""
        return [g for g in self.groups if g.site_relation == "same"]
